//! Table 2: the machine configuration — the paper's Xeon Gold 5218 next to
//! this reproduction's simulated hierarchies (see DESIGN.md for the
//! scaling rationale).

use apt_bench::emit_table;
use aptget::MemConfig;

fn row(name: &str, m: &MemConfig) -> Vec<Vec<String>> {
    vec![
        vec![
            name.into(),
            "L1 D-cache".into(),
            format!(
                "{} KiB, {}-way, {} cyc",
                m.l1.size_bytes >> 10,
                m.l1.assoc,
                m.l1.latency
            ),
        ],
        vec![
            name.into(),
            "L2 cache".into(),
            format!(
                "{} KiB, {}-way, {} cyc",
                m.l2.size_bytes >> 10,
                m.l2.assoc,
                m.l2.latency
            ),
        ],
        vec![
            name.into(),
            "LLC".into(),
            format!(
                "{} KiB, {}-way, {} cyc",
                m.llc.size_bytes >> 10,
                m.llc.assoc,
                m.llc.latency
            ),
        ],
        vec![
            name.into(),
            "DRAM".into(),
            format!(
                "{} cyc latency, 1 line / {} cyc bandwidth",
                m.dram_latency, m.dram_service_interval
            ),
        ],
        vec![
            name.into(),
            "Fill buffers".into(),
            format!("{} MSHRs", m.mshr_entries),
        ],
        vec![
            name.into(),
            "HW prefetch".into(),
            format!(
                "stride (lookahead {}), next-line {}",
                m.stride_lookahead,
                if m.next_line_prefetcher { "on" } else { "off" }
            ),
        ],
    ]
}

fn main() {
    let mut rows = row("paper-like", &MemConfig::paper_machine());
    rows.extend(row("scaled (default)", &MemConfig::scaled_machine()));
    emit_table(
        "table2_machine_config",
        "Table 2 — machine configuration",
        &["machine", "component", "parameters"],
        &rows,
    );
    println!("table2: OK");
}
