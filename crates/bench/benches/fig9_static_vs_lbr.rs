//! Figure 9: static distances {4, 16, 64} vs the LBR-derived distance.
//!
//! Expected shape: no single static distance dominates across the suite;
//! the LBR-derived configuration has the best average.

use apt_bench::{compare_variants, emit_table, fx, run_checked, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::{ainsworth_jones_optimize, geomean, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let statics = [4u64, 16, 64];
    let mut rows = Vec::new();
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); statics.len() + 1];
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let (cmp, _) = compare_variants(&w, &cfg);
        let mut row = vec![spec.name.to_string()];
        for (i, &d) in statics.iter().enumerate() {
            let (m, _) = ainsworth_jones_optimize(&w.module, d);
            let e = run_checked(&w, &m, &cfg);
            let s = cmp.baseline.cycles as f64 / e.stats.cycles as f64;
            per_variant[i].push(s);
            row.push(fx(s));
        }
        let lbr = cmp.speedup_of("APT-GET").expect("ran");
        per_variant[statics.len()].push(lbr);
        row.push(fx(lbr));
        rows.push(row);
    }
    let mut geo_row = vec!["GEOMEAN".to_string()];
    for v in &per_variant {
        geo_row.push(fx(geomean(v)));
    }
    rows.push(geo_row);
    emit_table(
        "fig9_static_vs_lbr",
        "Fig. 9 — static distances vs the LBR-derived configuration",
        &["app", "static-4", "static-16", "static-64", "LBR"],
        &rows,
    );

    let geos: Vec<f64> = per_variant.iter().map(|v| geomean(v)).collect();
    println!(
        "\ngeomeans: static-4 {:.2}x, static-16 {:.2}x, static-64 {:.2}x, LBR {:.2}x",
        geos[0], geos[1], geos[2], geos[3]
    );
    let best_static = geos[..3].iter().cloned().fold(0.0f64, f64::max);
    assert!(
        geos[3] > best_static,
        "the LBR-derived configuration must beat every static distance on average"
    );
    println!("fig9: OK");
}
