//! Figure 8: the LBR-derived configuration vs. the best configuration
//! found by exhaustively sweeping static distances D = {1..128}.
//!
//! Expected shape: APT-GET's single profiling run lands within a few
//! percent of the best swept configuration on (almost) every application —
//! the paper reports 1.30x (LBR) vs 1.32x (optimal) on average.

use apt_bench::{compare_variants, emit_table, fx, run_checked, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::{ainsworth_jones_optimize, geomean, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let distances = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    let (mut lbr_all, mut best_all) = (Vec::new(), Vec::new());
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let (cmp, _) = compare_variants(&w, &cfg);
        let lbr = cmp.speedup_of("APT-GET").expect("ran");

        // Exhaustive static sweep (the paper's "optimal" reference).
        let mut best = 1.0f64; // Distance sweep can always fall back to none.
        let mut best_d = 0u64;
        for &d in &distances {
            let (m, _) = ainsworth_jones_optimize(&w.module, d);
            let e = run_checked(&w, &m, &cfg);
            let s = cmp.baseline.cycles as f64 / e.stats.cycles as f64;
            if s > best {
                best = s;
                best_d = d;
            }
        }
        lbr_all.push(lbr);
        best_all.push(best.max(lbr));
        rows.push(vec![
            spec.name.to_string(),
            fx(lbr),
            fx(best),
            if best_d == 0 {
                "-".into()
            } else {
                best_d.to_string()
            },
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        fx(geomean(&lbr_all)),
        fx(geomean(&best_all)),
        String::new(),
    ]);
    emit_table(
        "fig8_lbr_vs_optimal",
        "Fig. 8 — LBR-derived configuration vs best swept static distance",
        &["app", "APT-GET (LBR)", "best static sweep", "best D"],
        &rows,
    );

    let g_lbr = geomean(&lbr_all);
    let g_best = geomean(&best_all);
    println!("\ngeomean: LBR {g_lbr:.2}x vs best-of-sweep {g_best:.2}x");
    // One profiling run must recover most of what an exhaustive
    // per-application search finds.
    assert!(
        g_lbr > g_best * 0.80,
        "LBR must be near the exhaustively-found optimum"
    );
    println!("fig8: OK");
}
