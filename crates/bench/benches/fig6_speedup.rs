//! Figure 6: execution-time speedup of APT-GET and Ainsworth & Jones over
//! the non-prefetching baseline, for all Table-3 applications.
//!
//! Expected shape (§4.3): APT-GET improves every application except CG
//! (≈ 1.0, correctly left alone by the profile), beats A&J overall, and
//! A&J shows at least one overhead-driven regression.

use apt_bench::{compare_variants, emit_table, fx, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::{geomean, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    let (mut aj_all, mut apt_all) = (Vec::new(), Vec::new());
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let (cmp, opt) = compare_variants(&w, &cfg);
        let aj = cmp.speedup_of("A&J").expect("ran");
        let ap = cmp.speedup_of("APT-GET").expect("ran");
        aj_all.push(aj);
        apt_all.push(ap);
        let sites: Vec<String> = opt
            .analysis
            .hints
            .iter()
            .map(|h| format!("{:?}@{}", h.site, h.distance))
            .collect();
        rows.push(vec![spec.name.to_string(), fx(aj), fx(ap), sites.join(" ")]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        fx(geomean(&aj_all)),
        fx(geomean(&apt_all)),
        String::new(),
    ]);
    emit_table(
        "fig6_speedup",
        "Fig. 6 — speedup over the non-prefetching baseline",
        &["app", "A&J", "APT-GET", "APT-GET decisions"],
        &rows,
    );

    let g_aj = geomean(&aj_all);
    let g_apt = geomean(&apt_all);
    println!("\ngeomean: A&J {g_aj:.2}x, APT-GET {g_apt:.2}x");
    assert!(
        g_apt > g_aj,
        "APT-GET must beat the static state of the art"
    );
    assert!(
        g_apt > 1.25,
        "APT-GET must deliver a substantial average win"
    );
    assert!(
        apt_all.iter().all(|&s| s > 0.85),
        "APT-GET must not significantly regress any application"
    );
    assert!(
        aj_all.iter().any(|&s| s < 0.95),
        "static injection shows an overhead-driven regression somewhere"
    );
    println!("fig6: OK");
}
