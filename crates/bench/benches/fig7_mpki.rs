//! Figure 7: LLC misses per kilo-instruction
//! (`offcore_requests.demand_data_rd`, fill-buffer hits included) for
//! baseline, A&J and APT-GET.
//!
//! Expected shape: APT-GET reduces MPKI more than A&J on average, and the
//! biggest MPKI reductions coincide with the biggest Fig. 6 speedups.

use apt_bench::{compare_variants, emit_table, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::PipelineConfig;

fn main() {
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    let mut reductions: Vec<(f64, f64)> = Vec::new();
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let (cmp, _) = compare_variants(&w, &cfg);
        let base = cmp.baseline.mpki();
        let aj = cmp.variants[0].1.mpki();
        let apt = cmp.variants[1].1.mpki();
        // Percentage of baseline misses removed (the paper's 65.4 % /
        // 48.3 % numbers).
        let red = |v: f64| (1.0 - v / base.max(1e-12)).max(0.0);
        reductions.push((red(aj), red(apt)));
        rows.push(vec![
            spec.name.to_string(),
            format!("{base:.2}"),
            format!("{aj:.2}"),
            format!("{apt:.2}"),
        ]);
    }
    emit_table(
        "fig7_mpki",
        "Fig. 7 — LLC MPKI (demand_data_rd, lower is better)",
        &["app", "baseline", "A&J", "APT-GET"],
        &rows,
    );

    let avg_aj: f64 = reductions.iter().map(|r| r.0).sum::<f64>() / reductions.len() as f64;
    let avg_apt: f64 = reductions.iter().map(|r| r.1).sum::<f64>() / reductions.len() as f64;
    println!(
        "\naverage miss reduction: A&J {:.1}%, APT-GET {:.1}%",
        avg_aj * 100.0,
        avg_apt * 100.0
    );
    assert!(
        avg_apt > avg_aj,
        "APT-GET must remove more misses than A&J on average"
    );
    assert!(
        avg_apt > 0.40,
        "APT-GET must remove a large share of baseline misses"
    );
    println!("fig7: OK");
}
