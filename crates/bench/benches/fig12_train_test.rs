//! Figure 12: input-generalisation — profile on a TRAIN input, apply the
//! hints to a TEST input, compare against profiling on TEST directly.
//!
//! Expected shape: train-profile speedups carry over to the test input
//! with no significant loss (the paper reports 1.39x train vs 1.36x test).

use apt_bench::{emit_table, fx, run_checked, scale, TEST_SEED, TRAIN_SEED};
use apt_passes::inject_prefetches;
use apt_workloads::all_workloads;
use aptget::{geomean, AptGet, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let mut rows = Vec::new();
    let (mut train_all, mut test_all) = (Vec::new(), Vec::new());
    for spec in all_workloads() {
        let w_train = spec.build(scale(), TRAIN_SEED);
        let w_test = spec.build(scale(), TEST_SEED);

        // Profile on TRAIN; the hints are positions in the (structurally
        // identical) module, so they transfer to the TEST build directly.
        let opt = apt
            .optimize(&w_train.module, w_train.image.clone(), &w_train.calls)
            .expect("profiling");

        // TRAIN-data speedup.
        let base_tr = run_checked(&w_train, &w_train.module, &cfg);
        let opt_tr = run_checked(&w_train, &opt.module, &cfg);
        let s_train = base_tr.stats.cycles as f64 / opt_tr.stats.cycles as f64;

        // TEST-data speedup with the TRAIN profile's hints.
        let mut m_test = w_test.module.clone();
        inject_prefetches(&mut m_test, &opt.analysis.specs());
        apt_passes::optimize_module(&mut m_test);
        let base_te = run_checked(&w_test, &w_test.module, &cfg);
        let opt_te = run_checked(&w_test, &m_test, &cfg);
        let s_test = base_te.stats.cycles as f64 / opt_te.stats.cycles as f64;

        train_all.push(s_train);
        test_all.push(s_test);
        rows.push(vec![spec.name.to_string(), fx(s_train), fx(s_test)]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        fx(geomean(&train_all)),
        fx(geomean(&test_all)),
    ]);
    emit_table(
        "fig12_train_test",
        "Fig. 12 — speedup with TRAIN profile on TRAIN vs TEST inputs",
        &["app", "train data", "test data"],
        &rows,
    );

    let g_train = geomean(&train_all);
    let g_test = geomean(&test_all);
    println!("\ngeomean: train {g_train:.2}x, test {g_test:.2}x");
    assert!(
        g_test > g_train * 0.9,
        "profiles must generalise across inputs"
    );
    assert!(g_test > 1.2, "test-input speedups must remain substantial");
    println!("fig12: OK");
}
