//! Table 4: graph data-set properties — the SNAP originals and the
//! synthetic stand-ins actually generated at the default scale.

use apt_bench::{emit_table, scale};
use apt_workloads::graphs::DATASETS;

fn main() {
    let sc = scale();
    let mut rows = Vec::new();
    for d in DATASETS {
        let g = d.generate(sc, 42);
        rows.push(vec![
            d.name.to_string(),
            d.vertices.to_string(),
            d.edges.to_string(),
            g.n.to_string(),
            g.m().to_string(),
            format!("{:.2}", g.mean_degree()),
        ]);
    }
    emit_table(
        "table4_datasets",
        &format!("Table 4 — datasets (synthetic stand-ins at scale {sc})"),
        &[
            "dataset",
            "paper #V",
            "paper #E",
            "gen #V",
            "gen #E",
            "gen degree",
        ],
        &rows,
    );
    // The stand-ins must track the paper's proportions.
    for (d, row) in DATASETS.iter().zip(&rows) {
        let gen_v: f64 = row[3].parse().expect("number");
        assert!(
            gen_v >= d.vertices as f64 * sc * 0.5,
            "{} too small",
            d.name
        );
    }
    println!("table4: OK");
}
