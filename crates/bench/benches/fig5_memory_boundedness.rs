//! Figure 5: fraction of cycles stalled on L3/DRAM for each application's
//! non-prefetching baseline.
//!
//! Expected shape: every application except CG is substantially memory
//! bound (the paper reports 49 % on average); CG's banded gather keeps it
//! compute bound.

use apt_bench::{emit_table, pct, run_checked, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::PipelineConfig;

fn main() {
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    let mut fractions = Vec::new();
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let exec = run_checked(&w, &w.module, &cfg);
        let f = exec.stats.memory_bound_fraction();
        rows.push(vec![spec.name.to_string(), pct(f)]);
        fractions.push((spec.name, f));
    }
    let avg = fractions.iter().map(|(_, f)| f).sum::<f64>() / fractions.len() as f64;
    rows.push(vec!["AVERAGE".into(), pct(avg)]);
    emit_table(
        "fig5_memory_boundedness",
        "Fig. 5 — % cycles stalled on L3/DRAM (baseline)",
        &["app", "L3+DRAM stall fraction"],
        &rows,
    );

    assert!(
        avg > 0.35,
        "the suite must be memory bound on average: {avg}"
    );
    let cg = fractions
        .iter()
        .find(|(n, _)| *n == "CG")
        .expect("CG runs")
        .1;
    assert!(cg < 0.25, "CG must be the compute-bound outlier: {cg}");
    println!("fig5: OK");
}
