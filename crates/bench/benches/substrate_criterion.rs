//! Criterion micro-benchmarks of the substrate itself: cache lookups,
//! MSHR traffic, LBR recording, interpreter throughput, slice extraction
//! and CWT peak detection. These track the *simulator's* performance, not
//! the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{execute, Machine, MemImage, PipelineConfig, SimConfig};

fn bench_hierarchy(c: &mut Criterion) {
    use apt_mem::{Hierarchy, MemConfig};
    c.bench_function("hierarchy/demand_load_stream", |b| {
        let cfg = MemConfig::scaled_machine();
        let mut h = Hierarchy::new(&cfg);
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            addr = (addr + 64) & 0xfffff;
            let r = h.demand_load(0x400100, 0x1000_0000 + addr, now);
            now += r.latency;
            black_box(r.latency)
        })
    });
    c.bench_function("hierarchy/sw_prefetch", |b| {
        let cfg = MemConfig::scaled_machine();
        let mut h = Hierarchy::new(&cfg);
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            addr = (addr * 1103515245 + 12345) & 0xffffff;
            h.sw_prefetch(0x400100, 0x1000_0000 + addr, now);
            now += 4;
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    c.bench_function("machine/micro_10k_iters", |b| {
        let w = micro::build(MicroParams {
            outer: 40,
            inner: 256,
            complexity: Complexity::Low,
            t_len: 1 << 16,
            window: 1 << 12,
            seed: 1,
        });
        b.iter(|| {
            let mut mach = Machine::new(&w.module, SimConfig::default(), w.image.clone());
            for (f, args) in &w.calls {
                black_box(mach.call(f, args).expect("runs"));
            }
        })
    });
}

fn bench_passes(c: &mut Criterion) {
    c.bench_function("passes/aj_injection", |b| {
        let m = micro::build_module(Complexity::Low);
        b.iter(|| {
            let mut m2 = m.clone();
            black_box(apt_passes::ainsworth_jones(&mut m2, 32).injected.len())
        })
    });
}

fn bench_cwt(c: &mut Criterion) {
    c.bench_function("profile/find_peaks_cwt_256bins", |b| {
        let mut signal = vec![0.0f64; 256];
        for (i, v) in signal.iter_mut().enumerate() {
            let x1 = (i as f64 - 40.0) / 6.0;
            let x2 = (i as f64 - 180.0) / 10.0;
            *v = 10.0 * (-x1 * x1 / 2.0).exp() + 5.0 * (-x2 * x2 / 2.0).exp();
        }
        let widths: Vec<usize> = (1..=16).collect();
        b.iter(|| black_box(apt_profile::find_peaks_cwt(&signal, &widths, 1.0).len()))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("optimize_micro", |b| {
        let w = micro::build(MicroParams {
            outer: 40,
            inner: 256,
            complexity: Complexity::Low,
            t_len: 1 << 16,
            window: 1 << 12,
            seed: 1,
        });
        let cfg = PipelineConfig::default();
        b.iter(|| {
            let apt = aptget::AptGet::new(cfg);
            let o = apt
                .optimize(&w.module, w.image.clone(), &w.calls)
                .expect("profiles");
            black_box(o.injection.injected.len())
        })
    });
    g.finish();
    // Silence the unused-import warning path for MemImage/execute.
    let _ = |i: MemImage| i;
    let _ = execute;
}

criterion_group!(
    benches,
    bench_hierarchy,
    bench_interpreter,
    bench_passes,
    bench_cwt,
    bench_pipeline
);
criterion_main!(benches);
