//! Ablations of the design choices DESIGN.md calls out: how sensitive are
//! the headline results to the MSHR capacity, the DRAM bandwidth model,
//! and the LBR sampling period?
//!
//! Not a paper figure — this probes the *reproduction's* robustness.

use apt_bench::{emit_table, fx};
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{execute, AptGet, MemConfig, PipelineConfig, SimConfig};

fn micro_w() -> apt_workloads::BuiltWorkload {
    micro::build(MicroParams {
        outer: 400,
        inner: 256,
        complexity: Complexity::Low,
        ..MicroParams::default()
    })
}

fn speedup_with(sim: SimConfig) -> (f64, u64) {
    let cfg = PipelineConfig::with_sim(sim);
    let w = micro_w();
    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("baseline");
    let apt = AptGet::new(cfg);
    let opt = apt
        .optimize(&w.module, w.image.clone(), &w.calls)
        .expect("profiling");
    let tuned = execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("tuned");
    assert_eq!(base.rets, tuned.rets);
    (
        base.stats.cycles as f64 / tuned.stats.cycles as f64,
        opt.analysis.hints.first().map(|h| h.distance).unwrap_or(0),
    )
}

fn main() {
    // 1. MSHR capacity: too few fill buffers throttle the prefetch stream.
    let mut rows = Vec::new();
    for mshr in [2usize, 4, 8, 16, 32] {
        let mem = MemConfig {
            mshr_entries: mshr,
            ..MemConfig::scaled_machine()
        };
        let (s, d) = speedup_with(SimConfig {
            mem,
            ..SimConfig::default()
        });
        rows.push(vec![format!("{mshr}"), fx(s), d.to_string()]);
    }
    emit_table(
        "ablation_mshr",
        "Ablation — APT-GET speedup vs MSHR capacity (micro, low)",
        &["MSHRs", "speedup", "chosen distance"],
        &rows,
    );
    let s2: f64 = rows[0][1].trim_end_matches('x').parse().expect("number");
    let s16: f64 = rows[3][1].trim_end_matches('x').parse().expect("number");
    assert!(
        s16 > s2,
        "more fill buffers must enable more outstanding prefetches"
    );

    // 2. DRAM bandwidth: a saturated channel caps the benefit.
    let mut rows = Vec::new();
    for service in [4u64, 8, 16, 32, 64] {
        let mem = MemConfig {
            dram_service_interval: service,
            ..MemConfig::scaled_machine()
        };
        let (s, d) = speedup_with(SimConfig {
            mem,
            ..SimConfig::default()
        });
        rows.push(vec![format!("1/{service} cyc"), fx(s), d.to_string()]);
    }
    emit_table(
        "ablation_bandwidth",
        "Ablation — APT-GET speedup vs DRAM bandwidth (micro, low)",
        &["line rate", "speedup", "chosen distance"],
        &rows,
    );
    let fast: f64 = rows[0][1].trim_end_matches('x').parse().expect("number");
    let slow: f64 = rows[4][1].trim_end_matches('x').parse().expect("number");
    assert!(
        fast > slow,
        "prefetching cannot beat a bandwidth-saturated channel"
    );

    // 3. LBR sampling period: sparser profiles must still find the same
    // configuration (the paper's <20 s overhead argument).
    let mut rows = Vec::new();
    let mut dists = Vec::new();
    for period in [5_000u64, 20_000, 100_000, 400_000] {
        let sim = SimConfig {
            lbr_sample_period: period,
            ..SimConfig::default()
        };
        let (s, d) = speedup_with(sim);
        dists.push(d);
        rows.push(vec![format!("{period}"), fx(s), d.to_string()]);
    }
    emit_table(
        "ablation_lbr_period",
        "Ablation — APT-GET vs LBR sampling period (micro, low)",
        &["period (cycles)", "speedup", "chosen distance"],
        &rows,
    );
    let d_ref = dists[1].max(1);
    assert!(
        dists.iter().all(|&d| d.abs_diff(d_ref) <= d_ref),
        "the chosen distance must be stable across sampling rates: {dists:?}"
    );
    println!("\nablations: OK");
}
