//! Cross-variant timeline alignment and diff.
//!
//! Baseline, Ainsworth&Jones, and APT-GET runs of the same workload
//! execute the same *algorithm* but not the same instruction stream:
//! injected `PREFETCH` ops inflate the optimized variants' retired
//! instruction counts, and their cycle axes diverge wherever prefetches
//! change miss behaviour. Comparing window `k` of one run against window
//! `k` of another is therefore meaningless.
//!
//! Instead, timelines are aligned on **normalized instruction progress**:
//! position `p ∈ [0, 1]` means "the point where a fraction `p` of the
//! run's retired instructions had committed". Loop iterations retire in
//! the same order in every variant, so equal progress fractions denote
//! (approximately) the same algorithmic work. Each timeline's window
//! cycles are apportioned onto progress ranges proportionally to
//! instruction overlap, which conserves total cycles exactly: summing any
//! full partition of `[0, 1]` returns the run's cycle count.

use crate::phase::Phase;
use crate::window::Timeline;

/// Cycles a timeline spent inside the normalized-progress range
/// `[lo, hi)`. Window cycles are apportioned proportionally to the
/// instruction overlap between the window's progress span and the range.
fn cycles_in_range(t: &Timeline, lo: f64, hi: f64) -> f64 {
    let total = t.total_instructions();
    if total == 0 || hi <= lo {
        return 0.0;
    }
    let n = total as f64;
    let mut cycles = 0.0;
    for s in &t.samples {
        if s.instructions == 0 {
            continue;
        }
        let w_lo = s.start_instr as f64 / n;
        let w_hi = (s.start_instr + s.instructions) as f64 / n;
        let overlap = w_hi.min(hi) - w_lo.max(lo);
        if overlap > 0.0 {
            cycles += s.cycles as f64 * overlap / (w_hi - w_lo);
        }
    }
    cycles
}

/// Resamples a timeline onto `bins` equal-width normalized-progress bins,
/// returning the cycles spent in each. The bin sum equals the run's total
/// cycles (up to float rounding); an empty timeline yields all-zero bins.
pub fn resample_cycles(t: &Timeline, bins: usize) -> Vec<f64> {
    (0..bins)
        .map(|b| {
            cycles_in_range(
                t,
                b as f64 / bins as f64,
                // Close the last bin at a value strictly above every
                // window's upper edge so the final instruction lands in it.
                if b + 1 == bins {
                    1.0 + f64::EPSILON
                } else {
                    (b + 1) as f64 / bins as f64
                },
            )
        })
        .collect()
}

/// Two timelines resampled onto a shared progress axis, with per-bin
/// cycle deltas (`other − base`; negative bins are where `other` is
/// faster).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDiff {
    pub bins: usize,
    pub base_cycles: Vec<f64>,
    pub other_cycles: Vec<f64>,
    pub delta: Vec<f64>,
}

impl TimelineDiff {
    pub fn new(base: &Timeline, other: &Timeline, bins: usize) -> TimelineDiff {
        let base_cycles = resample_cycles(base, bins);
        let other_cycles = resample_cycles(other, bins);
        let delta = base_cycles
            .iter()
            .zip(&other_cycles)
            .map(|(b, o)| o - b)
            .collect();
        TimelineDiff {
            bins,
            base_cycles,
            other_cycles,
            delta,
        }
    }

    /// Total cycle delta across all bins (`other − base`).
    pub fn total_delta(&self) -> f64 {
        self.delta.iter().sum()
    }

    /// Index of the bin where `other` gains the most over `base` (most
    /// negative delta), or `None` when no bin improves.
    pub fn best_bin(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &d) in self.delta.iter().enumerate() {
            if d < 0.0 && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// One baseline phase projected onto another variant's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDiff {
    /// The baseline phase (carries the progress range and aggregates).
    pub phase: Phase,
    /// Exact baseline cycles of the phase.
    pub base_cycles: u64,
    /// Cycles the other variant spent over the same progress range
    /// (apportioned, rounded to the nearest cycle).
    pub other_cycles: u64,
    /// `other_cycles − base_cycles`; negative means the other variant is
    /// faster in this phase.
    pub delta: i64,
}

/// Projects each baseline phase's normalized-progress range onto `other`
/// and reports per-phase cycle deltas. Phase cycle totals conserve: the
/// `other_cycles` over all phases sum to `other`'s total (± rounding),
/// because phases tile the baseline's progress axis.
pub fn phase_diff(base: &Timeline, phases: &[Phase], other: &Timeline) -> Vec<PhaseDiff> {
    let base_total = base.total_instructions();
    if base_total == 0 {
        return Vec::new();
    }
    let n = base_total as f64;
    phases
        .iter()
        .map(|p| {
            let lo = p.start_instr as f64 / n;
            let hi = if p.end_instr == base_total {
                1.0 + f64::EPSILON
            } else {
                p.end_instr as f64 / n
            };
            let other_cycles = cycles_in_range(other, lo, hi).round() as u64;
            PhaseDiff {
                phase: *p,
                base_cycles: p.cycles,
                other_cycles,
                delta: other_cycles as i64 - p.cycles as i64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{detect_phases, PhaseConfig};
    use crate::window::WindowSample;

    /// A timeline of `spec` windows given as (instructions, cycles).
    fn timeline(spec: &[(u64, u64)]) -> Timeline {
        let mut samples = Vec::new();
        let (mut instr, mut cycle) = (0u64, 0u64);
        for (i, &(n, c)) in spec.iter().enumerate() {
            samples.push(WindowSample {
                index: i as u64,
                start_cycle: cycle,
                end_cycle: cycle + c,
                start_instr: instr,
                instructions: n,
                cycles: c,
                loads: n / 2,
                ..Default::default()
            });
            instr += n;
            cycle += c;
        }
        Timeline { window: 0, samples }
    }

    #[test]
    fn resampling_conserves_total_cycles() {
        let t = timeline(&[(100, 300), (50, 700), (77, 123)]);
        for bins in [1, 2, 3, 7, 64] {
            let sum: f64 = resample_cycles(&t, bins).iter().sum();
            assert!(
                (sum - t.total_cycles() as f64).abs() < 1e-6,
                "bins={bins} sum={sum}"
            );
        }
    }

    #[test]
    fn resampling_empty_timeline_is_zero() {
        assert_eq!(resample_cycles(&Timeline::default(), 4), vec![0.0; 4]);
    }

    #[test]
    fn uniform_timeline_resamples_uniformly() {
        let t = timeline(&[(100, 500), (100, 500)]);
        let bins = resample_cycles(&t, 4);
        for b in &bins {
            assert!((b - 250.0).abs() < 1e-9, "{bins:?}");
        }
    }

    #[test]
    fn diff_localizes_the_improvement() {
        // Both variants retire the same work; `other` is 400 cycles
        // faster, all of it in the second half.
        let base = timeline(&[(100, 500), (100, 1000)]);
        let other = timeline(&[(100, 500), (100, 600)]);
        let d = TimelineDiff::new(&base, &other, 4);
        assert!((d.total_delta() + 400.0).abs() < 1e-6);
        assert!((d.delta[0]).abs() < 1e-9);
        assert!((d.delta[1]).abs() < 1e-9);
        assert!(d.delta[2] < 0.0 && d.delta[3] < 0.0);
        // Ties resolve to the earliest bin — deterministic.
        assert_eq!(d.best_bin(), Some(2));
    }

    #[test]
    fn diff_handles_different_instruction_counts() {
        // `other` retires 20% more instructions (injected prefetches) but
        // finishes faster; alignment is by fraction, not absolute count.
        let base = timeline(&[(100, 1000), (100, 1000)]);
        let other = timeline(&[(120, 800), (120, 800)]);
        let d = TimelineDiff::new(&base, &other, 2);
        assert!((d.delta[0] + 200.0).abs() < 1e-6);
        assert!((d.delta[1] + 200.0).abs() < 1e-6);
    }

    #[test]
    fn phase_diff_projects_ranges_and_conserves() {
        // Baseline: calm phase then memory-bound phase (detected).
        let mut spec = Vec::new();
        for _ in 0..6 {
            spec.push((900u64, 1000u64));
        }
        for _ in 0..6 {
            spec.push((300u64, 1000u64));
        }
        let mut base = timeline(&spec);
        // Give the second half a DRAM signature so phases split.
        for s in &mut base.samples[6..] {
            s.demand_fills = s.loads / 2;
            s.stall_dram = 400;
        }
        let phases = detect_phases(&base, &PhaseConfig::default());
        assert_eq!(phases.len(), 2);

        // Other variant: same instruction profile, second phase is faster.
        let mut other_spec = Vec::new();
        for _ in 0..6 {
            other_spec.push((900u64, 1000u64));
        }
        for _ in 0..6 {
            other_spec.push((300u64, 600u64));
        }
        let other = timeline(&other_spec);

        let diffs = phase_diff(&base, &phases, &other);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].delta, 0);
        assert_eq!(diffs[1].delta, -2400);
        let projected: u64 = diffs.iter().map(|d| d.other_cycles).sum();
        assert_eq!(projected, other.total_cycles());
    }

    #[test]
    fn phase_diff_on_empty_base_is_empty() {
        let other = timeline(&[(10, 10)]);
        assert!(phase_diff(&Timeline::default(), &[], &other).is_empty());
    }
}
