//! Phase detection over the window stream.
//!
//! Programs the paper targets alternate between compute-bound and
//! memory-bound phases (BC's forward/backward sweeps, IS's histogram vs
//! rank passes). The detector segments the window sequence at *change
//! points* of two features — IPC and DRAM-miss share — using a greedy
//! running-mean scan with breach confirmation: a new phase opens only
//! after `confirm` consecutive windows deviate from the current phase's
//! running mean beyond the configured thresholds, and phases shorter than
//! `min_windows` are merged back into their predecessor. The algorithm is
//! O(windows), allocation-light, and fully deterministic.
//!
//! Each phase reports an **Eq. 1-style implied distance**: the paper sets
//! `distance = round(MC / IC)` where `MC` is the cost of one off-core miss
//! and `IC` the cost of one loop iteration. At phase granularity the same
//! quantities fall out of the window counters: `MC ≈ stall_dram / offcore
//! demand loads` (mean DRAM service seen by the core) and `IC ≈ (cycles −
//! stall_dram) / offcore demand loads` (mean non-DRAM work separating
//! consecutive misses). The ratio says how many miss-free work quanta fit
//! inside one miss latency — the distance a software prefetch issued in
//! this phase would need to be timely.

use crate::window::{Timeline, WindowSample};

/// Detector tunables.
#[derive(Debug, Clone, Copy)]
pub struct PhaseConfig {
    /// Minimum phase length in windows; shorter segments merge backward.
    pub min_windows: usize,
    /// Relative IPC deviation (vs the running phase mean) that counts as a
    /// breach.
    pub ipc_rel_threshold: f64,
    /// Absolute DRAM-miss-share deviation that counts as a breach.
    pub miss_abs_threshold: f64,
    /// Consecutive breach windows required to confirm a change point.
    pub confirm: usize,
}

impl Default for PhaseConfig {
    fn default() -> PhaseConfig {
        PhaseConfig {
            min_windows: 3,
            ipc_rel_threshold: 0.25,
            miss_abs_threshold: 0.08,
            confirm: 2,
        }
    }
}

/// One detected phase: a contiguous window range plus its aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Zero-based phase index.
    pub index: usize,
    /// First window of the phase (inclusive).
    pub start_window: usize,
    /// One past the last window of the phase.
    pub end_window: usize,
    /// Cumulative instruction count at phase start / end (alignment axis).
    pub start_instr: u64,
    pub end_instr: u64,
    /// Cumulative cycle count at phase start / end.
    pub start_cycle: u64,
    pub end_cycle: u64,
    /// Instructions retired and cycles elapsed inside the phase.
    pub instructions: u64,
    pub cycles: u64,
    /// Mean IPC of the phase.
    pub ipc: f64,
    /// Mean DRAM-miss share of the phase.
    pub dram_share: f64,
    /// Eq. 1-style implied prefetch distance (0 when the phase has no
    /// off-core demand misses).
    pub implied_distance: u64,
}

/// Feature vector of one window.
fn features(s: &WindowSample) -> (f64, f64) {
    (s.ipc(), s.dram_share())
}

fn breaches(cfg: &PhaseConfig, mean: (f64, f64), win: (f64, f64)) -> bool {
    let ipc_dev = (win.0 - mean.0).abs();
    // The relative threshold is floored at a small absolute deviation so
    // near-zero-IPC phases don't split on noise.
    let ipc_limit = (mean.0 * cfg.ipc_rel_threshold).max(0.02);
    ipc_dev > ipc_limit || (win.1 - mean.1).abs() > cfg.miss_abs_threshold
}

/// Aggregates the half-open window range `[start, end)` into a [`Phase`].
fn build_phase(samples: &[WindowSample], index: usize, start: usize, end: usize) -> Phase {
    let mut sum = WindowSample::default();
    for s in &samples[start..end] {
        sum.add(s);
    }
    let first = &samples[start];
    let last = &samples[end - 1];
    let offcore = sum.demand_fills + sum.fb_hits_swpf + sum.fb_hits_other;
    let implied_distance = if offcore == 0 || sum.cycles <= sum.stall_dram {
        0
    } else {
        // MC / IC with the shared per-miss denominator cancelled:
        // (stall_dram/offcore) / ((cycles-stall_dram)/offcore).
        let mc = sum.stall_dram as f64 / offcore as f64;
        let ic = (sum.cycles - sum.stall_dram) as f64 / offcore as f64;
        (mc / ic).round().clamp(0.0, 4096.0) as u64
    };
    Phase {
        index,
        start_window: start,
        end_window: end,
        start_instr: first.start_instr,
        end_instr: last.start_instr + last.instructions,
        start_cycle: first.start_cycle,
        end_cycle: last.end_cycle,
        instructions: sum.instructions,
        cycles: sum.cycles,
        ipc: sum.ipc(),
        dram_share: sum.dram_share(),
        implied_distance,
    }
}

/// Segments `timeline` into phases. An empty timeline yields no phases; a
/// homogeneous one yields exactly one covering every window.
pub fn detect_phases(timeline: &Timeline, cfg: &PhaseConfig) -> Vec<Phase> {
    let samples = &timeline.samples;
    if samples.is_empty() {
        return Vec::new();
    }

    // Pass 1: greedy change-point scan with breach confirmation.
    let mut cuts: Vec<usize> = vec![0];
    let mut mean = features(&samples[0]);
    let mut len = 1usize;
    let mut breach_run = 0usize;
    let mut breach_start = 0usize;
    for (i, s) in samples.iter().enumerate().skip(1) {
        let f = features(s);
        if breaches(cfg, mean, f) {
            if breach_run == 0 {
                breach_start = i;
            }
            breach_run += 1;
            if breach_run >= cfg.confirm.max(1) {
                cuts.push(breach_start);
                // Restart the running mean from the breach windows.
                mean = features(&samples[breach_start]);
                len = 1;
                for t in &samples[breach_start + 1..=i] {
                    let g = features(t);
                    mean.0 += (g.0 - mean.0) / (len + 1) as f64;
                    mean.1 += (g.1 - mean.1) / (len + 1) as f64;
                    len += 1;
                }
                breach_run = 0;
            }
        } else {
            breach_run = 0;
            mean.0 += (f.0 - mean.0) / (len + 1) as f64;
            mean.1 += (f.1 - mean.1) / (len + 1) as f64;
            len += 1;
        }
    }
    cuts.push(samples.len());

    // Pass 2: merge segments shorter than `min_windows` into their
    // predecessor (the first segment merges forward instead).
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for pair in cuts.windows(2) {
        let (s, e) = (pair[0], pair[1]);
        match merged.last_mut() {
            Some(prev) if e - s < cfg.min_windows => prev.1 = e,
            Some(prev) if prev.1 - prev.0 < cfg.min_windows => prev.1 = e,
            _ => merged.push((s, e)),
        }
    }

    merged
        .iter()
        .enumerate()
        .map(|(i, &(s, e))| build_phase(samples, i, s, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic window with the given IPC (per mille) and DRAM share
    /// (percent), 10k cycles each.
    fn win(
        index: u64,
        ipc_milli: u64,
        dram_pct: u64,
        start_instr: u64,
        start_cycle: u64,
    ) -> WindowSample {
        let cycles = 10_000;
        let instructions = cycles * ipc_milli / 1000;
        let loads = instructions / 2;
        let offcore = loads * dram_pct / 100;
        WindowSample {
            index,
            start_cycle,
            end_cycle: start_cycle + cycles,
            start_instr,
            instructions,
            cycles,
            loads,
            l1_hits: loads - offcore,
            demand_fills: offcore,
            stall_dram: offcore * 10,
            ..Default::default()
        }
    }

    fn stream(spec: &[(usize, u64, u64)]) -> Timeline {
        let mut samples = Vec::new();
        let (mut instr, mut cycle, mut idx) = (0u64, 0u64, 0u64);
        for &(n, ipc, dram) in spec {
            for _ in 0..n {
                let s = win(idx, ipc, dram, instr, cycle);
                instr += s.instructions;
                cycle += s.cycles;
                idx += 1;
                samples.push(s);
            }
        }
        Timeline {
            window: 10_000,
            samples,
        }
    }

    #[test]
    fn homogeneous_stream_is_one_phase() {
        let t = stream(&[(12, 800, 5)]);
        let phases = detect_phases(&t, &PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].start_window, 0);
        assert_eq!(phases[0].end_window, 12);
        assert_eq!(phases[0].instructions, t.total_instructions());
        assert_eq!(phases[0].cycles, t.total_cycles());
    }

    #[test]
    fn two_regimes_split_at_the_change_point() {
        // Compute-bound then memory-bound: IPC halves, DRAM share jumps.
        let t = stream(&[(10, 900, 2), (10, 400, 40)]);
        let phases = detect_phases(&t, &PhaseConfig::default());
        assert_eq!(phases.len(), 2, "{phases:#?}");
        assert_eq!(phases[0].end_window, 10);
        assert_eq!(phases[1].start_window, 10);
        assert!(phases[0].ipc > phases[1].ipc);
        assert!(phases[1].dram_share > phases[0].dram_share);
        // Phases tile the run: counters conserve across the partition.
        assert_eq!(
            phases.iter().map(|p| p.instructions).sum::<u64>(),
            t.total_instructions()
        );
        assert_eq!(phases[0].end_instr, phases[1].start_instr);
    }

    #[test]
    fn single_noise_window_does_not_split() {
        let mut t = stream(&[(6, 800, 5), (1, 300, 50), (6, 800, 5)]);
        // Re-anchor the noise window's ordering fields (stream already did).
        assert_eq!(t.samples.len(), 13);
        let phases = detect_phases(&t, &PhaseConfig::default());
        assert_eq!(phases.len(), 1, "one-window blip must not confirm");
        // But two consecutive deviating windows do.
        t = stream(&[(6, 800, 5), (4, 300, 50)]);
        assert_eq!(detect_phases(&t, &PhaseConfig::default()).len(), 2);
    }

    #[test]
    fn short_tail_merges_into_previous_phase() {
        let t = stream(&[(10, 900, 2), (2, 300, 50)]);
        let phases = detect_phases(&t, &PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].end_window, 12);
    }

    #[test]
    fn implied_distance_tracks_miss_density() {
        // dram share 40%, 10-cycle stalls per miss.
        let t = stream(&[(8, 400, 40)]);
        let p = detect_phases(&t, &PhaseConfig::default())[0];
        let s = t.total();
        let offcore = s.demand_fills;
        let mc = s.stall_dram as f64 / offcore as f64;
        let ic = (s.cycles - s.stall_dram) as f64 / offcore as f64;
        assert_eq!(p.implied_distance, (mc / ic).round() as u64);
        assert!(p.implied_distance >= 1);
        // No misses → no implied distance.
        let calm = stream(&[(8, 900, 0)]);
        assert_eq!(
            detect_phases(&calm, &PhaseConfig::default())[0].implied_distance,
            0
        );
    }

    #[test]
    fn empty_timeline_yields_no_phases() {
        assert!(detect_phases(&Timeline::default(), &PhaseConfig::default()).is_empty());
    }
}
