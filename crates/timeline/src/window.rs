//! Window samples and the timeline container.
//!
//! A [`WindowSample`] is the per-window *delta* of every cumulative counter
//! the simulator keeps, plus window-scoped MSHR statistics and the
//! prefetch-outcome mix. Deltas (rather than instantaneous readings) make
//! conservation exact by construction: for any partition of a run into
//! windows, the field-wise sum of the samples equals the end-of-run totals,
//! regardless of window size, non-divisor boundaries, or a final partial
//! window.

/// Per-window software-prefetch outcome mix, as deltas of the tracer's
/// cumulative classification counts. A prefetch is attributed to the
/// window in which its classification became *terminal* (first use, fill
/// buffer coalesce, eviction, …); prefetches still pending at end of run
/// finalize as `useless` in the last window, mirroring
/// `OutcomeTracker::finalize`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowOutcomes {
    pub issued: u64,
    pub timely: u64,
    pub late: u64,
    pub early: u64,
    pub useless: u64,
    pub redundant: u64,
    pub dropped: u64,
}

impl WindowOutcomes {
    /// Sum of the terminal classifications in this window.
    pub fn classified(&self) -> u64 {
        self.timely + self.late + self.early + self.useless + self.redundant + self.dropped
    }

    /// Accumulates another mix into this one.
    pub fn add(&mut self, other: &WindowOutcomes) {
        self.issued += other.issued;
        self.timely += other.timely;
        self.late += other.late;
        self.early += other.early;
        self.useless += other.useless;
        self.redundant += other.redundant;
        self.dropped += other.dropped;
    }
}

/// One window's worth of simulation activity. All counter fields are
/// deltas over `[start_cycle, end_cycle)`; `start_cycle` / `start_instr`
/// anchor the window on the run's cumulative axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Zero-based window index.
    pub index: u64,
    /// Cumulative cycle count at window start.
    pub start_cycle: u64,
    /// Cumulative cycle count at window close. Because instructions retire
    /// with variable cycle costs, the close overshoots the nominal N-cycle
    /// boundary by up to one instruction's latency.
    pub end_cycle: u64,
    /// Cumulative retired-instruction count at window start (the
    /// cross-variant alignment axis — see [`crate::diff`]).
    pub start_instr: u64,
    /// Instructions retired in this window.
    pub instructions: u64,
    /// Cycles elapsed in this window (`end_cycle - start_cycle`).
    pub cycles: u64,
    pub branches: u64,
    pub taken_branches: u64,
    // ---- MemCounters deltas (field-for-field) ----
    pub loads: u64,
    pub stores: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub llc_hits: u64,
    pub demand_fills: u64,
    pub fb_hits_swpf: u64,
    pub fb_hits_other: u64,
    pub sw_pf_issued: u64,
    pub sw_pf_redundant: u64,
    pub sw_pf_dropped_full: u64,
    pub sw_pf_offcore: u64,
    pub sw_pf_oncore: u64,
    pub hw_pf_offcore: u64,
    pub pf_evicted_unused: u64,
    pub pf_used: u64,
    pub stall_l2: u64,
    pub stall_llc: u64,
    pub stall_dram: u64,
    // ---- window-scoped MSHR statistics ----
    /// ∫ occupancy d(cycle) over the window: divide by `cycles` for the
    /// mean number of occupied fill-buffer entries.
    pub mshr_occ_cycles: u64,
    /// High-water mark of MSHR occupancy within this window (the PR 4
    /// lifetime peak, reset per window).
    pub mshr_peak: u64,
    /// Prefetch-outcome mix classified within this window.
    pub outcomes: WindowOutcomes,
}

impl WindowSample {
    /// Instructions per cycle in this window.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Demand loads served past DRAM as a share of all loads
    /// (`offcore demand_data_rd / loads`), the paper's DRAM-miss share.
    pub fn dram_share(&self) -> f64 {
        ratio(
            self.demand_fills + self.fb_hits_swpf + self.fb_hits_other,
            self.loads,
        )
    }

    /// Fraction of loads that missed L1.
    pub fn l1_miss_rate(&self) -> f64 {
        ratio(self.loads.saturating_sub(self.l1_hits), self.loads)
    }

    /// Fraction of loads reaching the LLC that missed it too.
    pub fn llc_miss_rate(&self) -> f64 {
        let reached = self
            .loads
            .saturating_sub(self.l1_hits)
            .saturating_sub(self.l2_hits);
        ratio(reached.saturating_sub(self.llc_hits), reached)
    }

    /// Mean MSHR occupancy over the window.
    pub fn mshr_mean(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mshr_occ_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles stalled on DRAM in this window.
    pub fn dram_stall_fraction(&self) -> f64 {
        ratio(self.stall_dram, self.cycles)
    }

    /// Field-wise accumulation (for conservation checks and phase sums).
    /// Keeps the receiver's anchors (`index`, `start_*`) and extends
    /// `end_cycle`.
    pub fn add(&mut self, other: &WindowSample) {
        self.end_cycle = self.end_cycle.max(other.end_cycle);
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.branches += other.branches;
        self.taken_branches += other.taken_branches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.llc_hits += other.llc_hits;
        self.demand_fills += other.demand_fills;
        self.fb_hits_swpf += other.fb_hits_swpf;
        self.fb_hits_other += other.fb_hits_other;
        self.sw_pf_issued += other.sw_pf_issued;
        self.sw_pf_redundant += other.sw_pf_redundant;
        self.sw_pf_dropped_full += other.sw_pf_dropped_full;
        self.sw_pf_offcore += other.sw_pf_offcore;
        self.sw_pf_oncore += other.sw_pf_oncore;
        self.hw_pf_offcore += other.hw_pf_offcore;
        self.pf_evicted_unused += other.pf_evicted_unused;
        self.pf_used += other.pf_used;
        self.stall_l2 += other.stall_l2;
        self.stall_llc += other.stall_llc;
        self.stall_dram += other.stall_dram;
        self.mshr_occ_cycles += other.mshr_occ_cycles;
        self.mshr_peak = self.mshr_peak.max(other.mshr_peak);
        self.outcomes.add(&other.outcomes);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The sample stream of one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Nominal window size in cycles (`SimConfig::timeline_window`);
    /// 0 means sampling was disabled and `samples` is empty.
    pub window: u64,
    /// Windows in execution order. The last window is partial unless the
    /// run ended exactly on a boundary.
    pub samples: Vec<WindowSample>,
}

impl Timeline {
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Field-wise sum over all windows: the run totals a conserving
    /// sampler must reproduce.
    pub fn total(&self) -> WindowSample {
        let mut total = WindowSample::default();
        for s in &self.samples {
            total.add(s);
        }
        total
    }

    /// Total instructions retired (the alignment axis length).
    pub fn total_instructions(&self) -> u64 {
        self.samples.iter().map(|s| s.instructions).sum()
    }

    /// Total cycles elapsed.
    pub fn total_cycles(&self) -> u64 {
        self.samples.iter().map(|s| s.cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(index: u64, instr: u64, cycles: u64) -> WindowSample {
        WindowSample {
            index,
            instructions: instr,
            cycles,
            loads: instr / 2,
            l1_hits: instr / 4,
            stall_dram: cycles / 3,
            mshr_occ_cycles: cycles * 2,
            mshr_peak: 3,
            ..Default::default()
        }
    }

    #[test]
    fn totals_sum_field_wise() {
        let t = Timeline {
            window: 100,
            samples: vec![sample(0, 10, 100), sample(1, 20, 120), sample(2, 5, 40)],
        };
        let total = t.total();
        assert_eq!(total.instructions, 35);
        assert_eq!(total.cycles, 260);
        assert_eq!(total.loads, 17);
        assert_eq!(total.stall_dram, 33 + 40 + 13);
        assert_eq!(total.mshr_peak, 3);
        assert_eq!(t.total_instructions(), 35);
        assert_eq!(t.total_cycles(), 260);
    }

    #[test]
    fn derived_rates_guard_zero() {
        let z = WindowSample::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.dram_share(), 0.0);
        assert_eq!(z.l1_miss_rate(), 0.0);
        assert_eq!(z.llc_miss_rate(), 0.0);
        assert_eq!(z.mshr_mean(), 0.0);
        let s = WindowSample {
            instructions: 50,
            cycles: 100,
            loads: 20,
            l1_hits: 10,
            l2_hits: 4,
            llc_hits: 2,
            demand_fills: 3,
            fb_hits_swpf: 1,
            mshr_occ_cycles: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.l1_miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.llc_miss_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert!((s.dram_share() - 0.2).abs() < 1e-12);
        assert!((s.mshr_mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn outcome_mix_accumulates() {
        let mut a = WindowOutcomes {
            issued: 5,
            timely: 3,
            late: 1,
            ..Default::default()
        };
        let b = WindowOutcomes {
            issued: 2,
            useless: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.issued, 7);
        assert_eq!(a.classified(), 6);
    }
}
