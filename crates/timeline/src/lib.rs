//! Time-resolved telemetry for the APT-GET reproduction.
//!
//! Every other observability layer in the workspace (trace outcome tables,
//! campaign tables, Prometheus series, bench snapshots) reports *end-of-run
//! aggregates*. This crate adds the temporal dimension the paper's Eq. 1
//! timeliness argument is actually about:
//!
//! * [`window`] — the [`WindowSample`] record the simulator emits every
//!   `SimConfig::timeline_window` cycles, and the [`Timeline`] container.
//!   Samples are *deltas of cumulative counters* taken at window
//!   boundaries, so summing every window reproduces the end-of-run
//!   `PerfStats` / `MemCounters` totals exactly (conservation — asserted
//!   by the campaign runner on every cell);
//! * [`phase`] — change-point segmentation of the window stream on IPC and
//!   DRAM-miss-share deltas, with per-phase Eq. 1-style implied prefetch
//!   distances re-derived from aggregate window counters;
//! * [`diff`] — cross-variant alignment: baseline / A&J / APT-GET runs of
//!   the same workload retire different instruction counts on divergent
//!   cycle axes, so timelines are aligned on *normalized instruction
//!   progress* and compared per-bin and per-phase;
//! * [`html`] — a hand-rolled inline-SVG chart renderer (no JavaScript, no
//!   external resources) in the same spirit as the in-repo Chrome-trace
//!   and Prometheus writers;
//! * [`jsonio`] — serialization through the `apt-metrics` JSON writer so
//!   timelines travel inside campaign artifacts.
//!
//! The crate sits below `apt-cpu` in the workspace DAG (the `Machine`
//! produces `WindowSample`s) and depends only on `apt-metrics` (for JSON).

pub mod diff;
pub mod html;
pub mod jsonio;
pub mod phase;
pub mod window;

pub use diff::{phase_diff, resample_cycles, PhaseDiff, TimelineDiff};
pub use html::{
    escape, html_page, line_chart, line_chart_banded, stack_chart, Band, HBand, Series, PALETTE,
};
pub use jsonio::{timeline_from_json, timeline_from_value, timeline_to_json};
pub use phase::{detect_phases, Phase, PhaseConfig};
pub use window::{Timeline, WindowOutcomes, WindowSample};
