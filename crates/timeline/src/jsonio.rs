//! Timeline serialization through the `apt-metrics` hand-rolled JSON
//! layer (DESIGN.md §8 policy: no external serialisation crates).
//!
//! A timeline is mostly a dense matrix of `u64` counters, so the format
//! is columnar-by-name: a `fields` header lists the column names once and
//! each sample is a plain number row in that order. Readers map names to
//! columns, which keeps the format self-describing — a reader ignores
//! columns it does not know and defaults columns the writer did not emit,
//! mirroring the bench-snapshot compatibility rule.

use apt_metrics::json::{self, Json};

use crate::window::{Timeline, WindowSample};

type Get = fn(&WindowSample) -> u64;
type Set = fn(&mut WindowSample, u64);

macro_rules! field_table {
    ($(($name:literal, $($path:ident).+)),* $(,)?) => {
        &[$((
            $name,
            (|s: &WindowSample| s.$($path).+) as Get,
            (|s: &mut WindowSample, v: u64| s.$($path).+ = v) as Set,
        )),*]
    };
}

/// Every serialized column: name, reader, writer. Order defines the row
/// layout the writer emits.
const FIELDS: &[(&str, Get, Set)] = field_table![
    ("index", index),
    ("start_cycle", start_cycle),
    ("end_cycle", end_cycle),
    ("start_instr", start_instr),
    ("instructions", instructions),
    ("cycles", cycles),
    ("branches", branches),
    ("taken_branches", taken_branches),
    ("loads", loads),
    ("stores", stores),
    ("l1_hits", l1_hits),
    ("l2_hits", l2_hits),
    ("llc_hits", llc_hits),
    ("demand_fills", demand_fills),
    ("fb_hits_swpf", fb_hits_swpf),
    ("fb_hits_other", fb_hits_other),
    ("sw_pf_issued", sw_pf_issued),
    ("sw_pf_redundant", sw_pf_redundant),
    ("sw_pf_dropped_full", sw_pf_dropped_full),
    ("sw_pf_offcore", sw_pf_offcore),
    ("sw_pf_oncore", sw_pf_oncore),
    ("hw_pf_offcore", hw_pf_offcore),
    ("pf_evicted_unused", pf_evicted_unused),
    ("pf_used", pf_used),
    ("stall_l2", stall_l2),
    ("stall_llc", stall_llc),
    ("stall_dram", stall_dram),
    ("mshr_occ_cycles", mshr_occ_cycles),
    ("mshr_peak", mshr_peak),
    ("out_issued", outcomes.issued),
    ("out_timely", outcomes.timely),
    ("out_late", outcomes.late),
    ("out_early", outcomes.early),
    ("out_useless", outcomes.useless),
    ("out_redundant", outcomes.redundant),
    ("out_dropped", outcomes.dropped),
];

/// Serializes a timeline to a compact single-line JSON document.
pub fn timeline_to_json(t: &Timeline) -> String {
    let mut out = String::with_capacity(64 + t.samples.len() * FIELDS.len() * 8);
    out.push_str("{\"schema\":1,\"window\":");
    out.push_str(&t.window.to_string());
    out.push_str(",\"fields\":[");
    for (i, (name, _, _)) in FIELDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
    }
    out.push_str("],\"samples\":[");
    for (i, s) in t.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, (_, get, _)) in FIELDS.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&get(s).to_string());
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Parses a timeline written by [`timeline_to_json`] (or a compatible
/// writer with a column subset/superset).
pub fn timeline_from_json(text: &str) -> Result<Timeline, String> {
    let doc = json::parse(text)?;
    timeline_from_value(&doc)
}

/// Parses a timeline from an already-parsed JSON value (for timelines
/// embedded inside a larger campaign artifact).
pub fn timeline_from_value(doc: &Json) -> Result<Timeline, String> {
    let schema = doc.u64_field("schema")?;
    if schema != 1 {
        return Err(format!("unsupported timeline schema {schema}"));
    }
    let window = doc.u64_field("window")?;
    let names = doc
        .get("fields")
        .and_then(Json::as_arr)
        .ok_or("missing `fields` array")?;
    // Map each serialized column to its setter; unknown names are skipped.
    let mut setters: Vec<Option<Set>> = Vec::with_capacity(names.len());
    for n in names {
        let name = n.as_str().ok_or("non-string field name")?;
        setters.push(
            FIELDS
                .iter()
                .find(|(f, _, _)| *f == name)
                .map(|(_, _, set)| *set),
        );
    }
    let rows = doc
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or("missing `samples` array")?;
    let mut samples = Vec::with_capacity(rows.len());
    for (r, row) in rows.iter().enumerate() {
        let cols = row
            .as_arr()
            .ok_or_else(|| format!("sample {r} is not an array"))?;
        if cols.len() != setters.len() {
            return Err(format!(
                "sample {r} has {} columns, header names {}",
                cols.len(),
                setters.len()
            ));
        }
        let mut s = WindowSample::default();
        for (c, val) in cols.iter().enumerate() {
            if let Some(set) = setters[c] {
                set(
                    &mut s,
                    val.as_u64()
                        .ok_or_else(|| format!("sample {r} column {c} is not a u64"))?,
                );
            }
        }
        samples.push(s);
    }
    Ok(Timeline { window, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowOutcomes;

    fn sample_timeline() -> Timeline {
        let mut a = WindowSample {
            index: 0,
            start_cycle: 0,
            end_cycle: 10_010,
            instructions: 4_000,
            cycles: 10_010,
            loads: 1_500,
            l1_hits: 1_200,
            demand_fills: 90,
            stall_dram: 3_600,
            mshr_occ_cycles: 22_000,
            mshr_peak: 7,
            ..Default::default()
        };
        a.outcomes = WindowOutcomes {
            issued: 40,
            timely: 25,
            late: 10,
            useless: 5,
            ..Default::default()
        };
        let b = WindowSample {
            index: 1,
            start_cycle: 10_010,
            end_cycle: 13_044,
            start_instr: 4_000,
            instructions: 900,
            cycles: 3_034,
            loads: 300,
            ..Default::default()
        };
        Timeline {
            window: 10_000,
            samples: vec![a, b],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample_timeline();
        let text = timeline_to_json(&t);
        assert!(!text.contains('\n'), "single-line artifact");
        let back = timeline_from_json(&text).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn unknown_columns_are_ignored_and_missing_default() {
        // A future writer with an extra column and without `mshr_peak`.
        let text = r#"{"schema":1,"window":500,
            "fields":["index","cycles","instructions","novel_counter"],
            "samples":[[0,500,200,99],[1,250,80,1]]}"#;
        let t = timeline_from_json(text).expect("forward compatible");
        assert_eq!(t.window, 500);
        assert_eq!(t.samples.len(), 2);
        assert_eq!(t.samples[0].cycles, 500);
        assert_eq!(t.samples[1].instructions, 80);
        assert_eq!(t.samples[0].mshr_peak, 0);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(timeline_from_json("{}").is_err());
        assert!(timeline_from_json(r#"{"schema":2,"window":1,"fields":[],"samples":[]}"#).is_err());
        assert!(timeline_from_json(
            r#"{"schema":1,"window":1,"fields":["cycles"],"samples":[[1,2]]}"#
        )
        .is_err());
        assert!(timeline_from_json(
            r#"{"schema":1,"window":1,"fields":["cycles"],"samples":[[1.5]]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_timeline_round_trips() {
        let t = Timeline {
            window: 10_000,
            samples: Vec::new(),
        };
        assert_eq!(timeline_from_json(&timeline_to_json(&t)).unwrap(), t);
    }
}
