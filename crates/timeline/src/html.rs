//! Self-contained HTML report rendering with hand-rolled inline SVG.
//!
//! The report must open from a file on an air-gapped machine and be
//! byte-identical across runs and worker counts, so the renderer follows
//! the workspace's hand-written-serializer discipline: no JavaScript, no
//! external stylesheets, fonts, or images — and no URLs at all (the SVG
//! `xmlns` attribute is deliberately omitted; it is only required for
//! standalone `.svg` files, not for SVG inlined in HTML). All numbers are
//! printed through fixed-precision `format!`, which is deterministic.

/// One plotted series: y-values at equally spaced x positions.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// CSS color (hex literal, e.g. `"#1f77b4"`).
    pub color: &'static str,
    pub points: Vec<f64>,
}

impl Series {
    pub fn new(label: impl Into<String>, color: &'static str, points: Vec<f64>) -> Series {
        Series {
            label: label.into(),
            color,
            points,
        }
    }
}

/// A labelled x-axis band (a detected phase), in normalized [0, 1]
/// coordinates.
#[derive(Debug, Clone)]
pub struct Band {
    pub label: String,
    pub start: f64,
    pub end: f64,
}

/// A labelled horizontal band in *value* space (e.g. a bench-gate
/// tolerance corridor around a baseline value).
#[derive(Debug, Clone)]
pub struct HBand {
    pub label: String,
    pub lo: f64,
    pub hi: f64,
}

/// A labelled vertical marker (e.g. a hint-swap generation) at a
/// normalized [0, 1] x position.
#[derive(Debug, Clone)]
pub struct VMark {
    pub label: String,
    pub x: f64,
}

/// Default qualitative palette (colorblind-safe subset).
pub const PALETTE: [&str; 7] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
];

const W: f64 = 720.0;
const H: f64 = 170.0;
const PAD_L: f64 = 52.0;
const PAD_R: f64 = 12.0;
const PAD_T: f64 = 8.0;
const PAD_B: f64 = 22.0;

fn px(v: f64) -> String {
    format!("{v:.1}")
}

fn fmt_val(v: f64) -> String {
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if a >= 10_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if a >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Escapes text for use inside HTML/SVG text nodes and attributes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn x_at(i: usize, n: usize) -> f64 {
    let span = W - PAD_L - PAD_R;
    if n <= 1 {
        PAD_L + span / 2.0
    } else {
        PAD_L + span * i as f64 / (n - 1) as f64
    }
}

fn y_at(v: f64, max: f64) -> f64 {
    let span = H - PAD_T - PAD_B;
    H - PAD_B - span * (v / max).clamp(0.0, 1.0)
}

fn band_rects(out: &mut String, bands: &[Band]) {
    let span = W - PAD_L - PAD_R;
    for (i, b) in bands.iter().enumerate() {
        let x0 = PAD_L + span * b.start.clamp(0.0, 1.0);
        let x1 = PAD_L + span * b.end.clamp(0.0, 1.0);
        if i % 2 == 1 {
            out.push_str(&format!(
                "<rect x='{}' y='{}' width='{}' height='{}' fill='#000' opacity='0.05'/>",
                px(x0),
                px(PAD_T),
                px((x1 - x0).max(0.0)),
                px(H - PAD_T - PAD_B)
            ));
        }
        out.push_str(&format!(
            "<text x='{}' y='{}' font-size='9' fill='#888' text-anchor='middle'>{}</text>",
            px((x0 + x1) / 2.0),
            px(H - 6.0),
            escape(&b.label)
        ));
    }
}

fn hband_rects(out: &mut String, hbands: &[HBand], max: f64) {
    for b in hbands {
        let (lo, hi) = (b.lo.min(b.hi), b.lo.max(b.hi));
        let y_hi = y_at(hi, max);
        let y_lo = y_at(lo, max);
        out.push_str(&format!(
            "<rect x='{}' y='{}' width='{}' height='{}' fill='#2ca02c' opacity='0.12'/>",
            px(PAD_L),
            px(y_hi),
            px(W - PAD_L - PAD_R),
            px((y_lo - y_hi).max(0.0))
        ));
        for y in [y_hi, y_lo] {
            out.push_str(&format!(
                "<line x1='{}' y1='{}' x2='{}' y2='{}' stroke='#2ca02c' \
                 stroke-width='0.8' stroke-dasharray='4 3'/>",
                px(PAD_L),
                px(y),
                px(W - PAD_R),
                px(y)
            ));
        }
        if !b.label.is_empty() {
            out.push_str(&format!(
                "<text x='{}' y='{}' font-size='9' fill='#2ca02c' text-anchor='end'>{}</text>",
                px(W - PAD_R - 2.0),
                px((y_hi + 9.0).min(H - PAD_B - 2.0)),
                escape(&b.label)
            ));
        }
    }
}

fn frame(out: &mut String, max: f64, y_label: &str) {
    out.push_str(&format!(
        "<rect x='{}' y='{}' width='{}' height='{}' fill='none' stroke='#ccc'/>",
        px(PAD_L),
        px(PAD_T),
        px(W - PAD_L - PAD_R),
        px(H - PAD_T - PAD_B)
    ));
    out.push_str(&format!(
        "<text x='{}' y='{}' font-size='9' fill='#555' text-anchor='end'>{}</text>",
        px(PAD_L - 4.0),
        px(PAD_T + 8.0),
        escape(&fmt_val(max))
    ));
    out.push_str(&format!(
        "<text x='{}' y='{}' font-size='9' fill='#555' text-anchor='end'>0</text>",
        px(PAD_L - 4.0),
        px(H - PAD_B)
    ));
    out.push_str(&format!(
        "<text x='{}' y='{}' font-size='9' fill='#555' transform='rotate(-90 10 {})' text-anchor='middle'>{}</text>",
        px(10.0),
        px(H / 2.0),
        px(H / 2.0),
        escape(y_label)
    ));
}

fn legend(out: &mut String, series: &[Series]) {
    let mut x = PAD_L + 6.0;
    for s in series {
        out.push_str(&format!(
            "<rect x='{}' y='{}' width='8' height='8' fill='{}'/>",
            px(x),
            px(PAD_T + 3.0),
            s.color
        ));
        out.push_str(&format!(
            "<text x='{}' y='{}' font-size='9' fill='#333'>{}</text>",
            px(x + 11.0),
            px(PAD_T + 10.0),
            escape(&s.label)
        ));
        x += 16.0 + 7.0 * s.label.len() as f64;
    }
}

/// Renders a line chart of one or more series over a shared implicit x
/// axis, with optional phase bands. Returns an `<svg>` element.
pub fn line_chart(series: &[Series], bands: &[Band], y_label: &str) -> String {
    line_chart_banded(series, bands, &[], y_label)
}

/// [`line_chart`] plus horizontal value-space bands (tolerance
/// corridors). The y scale stretches to keep every band in view.
pub fn line_chart_banded(
    series: &[Series],
    bands: &[Band],
    hbands: &[HBand],
    y_label: &str,
) -> String {
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    let max = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .chain(hbands.iter().flat_map(|b| [b.lo, b.hi]))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut out = format!(
        "<svg viewBox='0 0 {} {}' width='{}' height='{}'>",
        W, H, W, H
    );
    band_rects(&mut out, bands);
    hband_rects(&mut out, hbands, max);
    frame(&mut out, max, y_label);
    for s in series {
        if s.points.is_empty() {
            continue;
        }
        let pts: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{},{}", px(x_at(i, n)), px(y_at(v, max))))
            .collect();
        out.push_str(&format!(
            "<polyline points='{}' fill='none' stroke='{}' stroke-width='1.5'/>",
            pts.join(" "),
            s.color
        ));
    }
    legend(&mut out, series);
    out.push_str("</svg>");
    out
}

/// [`line_chart`] plus labelled vertical event markers (dashed lines),
/// e.g. hint-swap generations on a drift timeline.
pub fn line_chart_marked(series: &[Series], marks: &[VMark], y_label: &str) -> String {
    let mut out = line_chart_banded(series, &[], &[], y_label);
    let closing = out.len() - "</svg>".len();
    let mut extra = String::new();
    let span = W - PAD_L - PAD_R;
    for m in marks {
        let x = PAD_L + span * m.x.clamp(0.0, 1.0);
        extra.push_str(&format!(
            "<line x1='{}' y1='{}' x2='{}' y2='{}' stroke='#d62728' \
             stroke-width='0.8' stroke-dasharray='3 3'/>",
            px(x),
            px(PAD_T),
            px(x),
            px(H - PAD_B)
        ));
        if !m.label.is_empty() {
            extra.push_str(&format!(
                "<text x='{}' y='{}' font-size='9' fill='#d62728' text-anchor='middle'>{}</text>",
                px(x),
                px(H - 6.0),
                escape(&m.label)
            ));
        }
    }
    out.insert_str(closing, &extra);
    out
}

/// Renders a stacked area chart: each series is a layer, stacked in the
/// order given. Returns an `<svg>` element.
pub fn stack_chart(series: &[Series], bands: &[Band], y_label: &str) -> String {
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    let mut top = vec![0.0_f64; n];
    for s in series {
        for (i, &v) in s.points.iter().enumerate() {
            top[i] += v;
        }
    }
    let max = top.iter().copied().fold(0.0_f64, f64::max).max(1e-9);
    let mut out = format!(
        "<svg viewBox='0 0 {} {}' width='{}' height='{}'>",
        W, H, W, H
    );
    band_rects(&mut out, bands);
    let mut lower = vec![0.0_f64; n];
    for s in series {
        if n == 0 {
            break;
        }
        let mut upper = lower.clone();
        for (i, &v) in s.points.iter().enumerate() {
            upper[i] += v;
        }
        let mut pts = Vec::with_capacity(2 * n);
        for (i, u) in upper.iter().enumerate() {
            pts.push(format!("{},{}", px(x_at(i, n)), px(y_at(*u, max))));
        }
        for (i, l) in lower.iter().enumerate().rev() {
            pts.push(format!("{},{}", px(x_at(i, n)), px(y_at(*l, max))));
        }
        out.push_str(&format!(
            "<polygon points='{}' fill='{}' opacity='0.8'/>",
            pts.join(" "),
            s.color
        ));
        lower = upper;
    }
    frame(&mut out, max, y_label);
    legend(&mut out, series);
    out.push_str("</svg>");
    out
}

/// Wraps pre-rendered section bodies into a complete standalone HTML page.
/// `sections` are `(heading, body_html)` pairs rendered in order.
pub fn html_page(title: &str, intro: &str, sections: &[(String, String)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>");
    out.push_str(&format!("<title>{}</title>", escape(title)));
    out.push_str(
        "<style>body{font-family:system-ui,sans-serif;margin:24px auto;max-width:780px;\
         color:#222}h1{font-size:20px}h2{font-size:15px;border-bottom:1px solid #ddd;\
         padding-bottom:3px;margin-top:28px}p{font-size:13px;color:#444}\
         table{border-collapse:collapse;font-size:12px}td,th{border:1px solid #ccc;\
         padding:3px 8px;text-align:right}th{background:#f4f4f4}\
         td:first-child,th:first-child{text-align:left}\
         .good{color:#2ca02c}.bad{color:#d62728}</style></head><body>",
    );
    out.push_str(&format!("<h1>{}</h1>", escape(title)));
    if !intro.is_empty() {
        out.push_str(&format!("<p>{}</p>", escape(intro)));
    }
    for (heading, body) in sections {
        out.push_str(&format!("<h2>{}</h2>", escape(heading)));
        out.push_str(body);
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new("ipc", PALETTE[0], vec![0.8, 0.7, 0.2, 0.25, 0.8]),
            Series::new("dram", PALETTE[1], vec![0.05, 0.1, 0.5, 0.45, 0.06]),
        ]
    }

    fn demo_bands() -> Vec<Band> {
        vec![
            Band {
                label: "p0".into(),
                start: 0.0,
                end: 0.4,
            },
            Band {
                label: "p1".into(),
                start: 0.4,
                end: 1.0,
            },
        ]
    }

    #[test]
    fn charts_are_self_contained_svg() {
        for svg in [
            line_chart(&demo_series(), &demo_bands(), "rate"),
            stack_chart(&demo_series(), &demo_bands(), "count"),
        ] {
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>"));
            assert!(!svg.contains("http"), "external reference in {svg}");
            assert!(!svg.contains("script"));
            assert!(svg.contains("p0") && svg.contains("p1"));
        }
    }

    #[test]
    fn charts_are_deterministic() {
        let a = line_chart(&demo_series(), &demo_bands(), "rate");
        let b = line_chart(&demo_series(), &demo_bands(), "rate");
        assert_eq!(a, b);
    }

    #[test]
    fn tolerance_bands_render_and_stretch_the_scale() {
        let hband = HBand {
            label: "±5% gate".into(),
            lo: 0.9,
            hi: 1.5,
        };
        let svg = line_chart_banded(&demo_series(), &[], &[hband], "rate");
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("±5% gate"));
        // The y max must cover the band top (1.5), not just the series
        // max (0.8): the axis label shows the stretched value.
        assert!(svg.contains(">1.500<"));
        assert_eq!(
            line_chart(&demo_series(), &demo_bands(), "rate"),
            line_chart_banded(&demo_series(), &demo_bands(), &[], "rate"),
        );
    }

    #[test]
    fn vertical_marks_render_inside_the_svg() {
        let marks = vec![
            VMark {
                label: "gen 1".into(),
                x: 0.25,
            },
            VMark {
                label: String::new(),
                x: 2.0, // clamped to the right edge
            },
        ];
        let svg = line_chart_marked(&demo_series(), &marks, "max_tv");
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("gen 1"));
        assert!(svg.contains("stroke-dasharray='3 3'"));
        assert!(!svg.contains("http"));
        assert_eq!(
            line_chart_marked(&demo_series(), &[], "max_tv"),
            line_chart(&demo_series(), &[], "max_tv"),
            "no marks means the plain chart"
        );
    }

    #[test]
    fn empty_series_render_without_panicking() {
        let svg = line_chart(&[], &[], "y");
        assert!(svg.contains("</svg>"));
        let one = vec![Series::new("solo", PALETTE[2], vec![1.0])];
        assert!(stack_chart(&one, &[], "y").contains("polygon"));
    }

    #[test]
    fn page_wraps_sections_and_escapes() {
        let page = html_page(
            "BFS <timeline>",
            "A & B",
            &[("Phase diff".into(), "<table></table>".into())],
        );
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("BFS &lt;timeline&gt;"));
        assert!(page.contains("A &amp; B"));
        assert!(page.contains("<h2>Phase diff</h2><table></table>"));
        assert!(!page.contains("http"));
        assert!(page.ends_with("</body></html>\n"));
    }

    #[test]
    fn value_labels_are_compact() {
        assert_eq!(fmt_val(0.123456), "0.123");
        assert_eq!(fmt_val(42.0), "42");
        assert_eq!(fmt_val(15_300.0), "15.3k");
        assert_eq!(fmt_val(2_500_000.0), "2.50M");
    }
}
