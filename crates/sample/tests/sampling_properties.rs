//! Property tests for the sampled-simulation estimator.
//!
//! The two load-bearing invariants:
//!
//! * **Exactness at 100 % coverage** — with `window == period` every
//!   instruction runs detailed, so the ratio estimator must collapse to
//!   the exact run totals field-for-field.
//! * **Conservation under arbitrary schedules** — for any (period,
//!   window, warm-up, seed), including periods longer than the whole run:
//!   architectural results are exact, the instruction count is exact, and
//!   the rescaled timeline sums exactly to the estimated totals.

use apt_cpu::{MemImage, SimConfig};
use apt_lir::{FunctionBuilder, Module, Width};
use apt_sample::{run_sampled, SampleConfig};
use apt_trace::TraceConfig;
use aptget::execute_traced;
use proptest::prelude::*;

/// A strided-sum kernel with a software prefetch 16 elements ahead —
/// enough memory traffic to exercise cache warming, MSHR accounting, and
/// prefetch-outcome classification in every phase.
fn walk_module() -> Module {
    let mut m = Module::new("sampled-walk");
    let f = m.add_function("walk", &["base", "n"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (base, n) = (bd.param(0), bd.param(1));
        let s = bd.loop_up_reduce(0u64, n, 1, 0u64, |bd, iv, acc| {
            let ahead = bd.add(iv, 16u64);
            let pf = bd.elem_addr(base, ahead, Width::W8);
            bd.prefetch(pf);
            let v = bd.load_elem(base, iv, Width::W8, false);
            bd.add(acc, v).into()
        });
        bd.ret(Some(s));
    }
    m
}

fn walk_inputs(n: u64, data_seed: u64) -> (MemImage, Vec<(String, Vec<u64>)>) {
    let data: Vec<u64> = (0..n)
        .map(|i| {
            let mut z = data_seed
                .wrapping_add(i)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 29;
            z & 0xFFFF
        })
        .collect();
    let mut image = MemImage::new();
    let base = image.alloc_u64_slice(&data);
    (image, vec![("walk".to_string(), vec![base, n])])
}

fn sim() -> SimConfig {
    SimConfig::no_profiling(apt_mem::MemConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At `window == period` nothing is fast-forwarded and every counter
    /// — not just the conserved ones — equals the exact detailed run.
    #[test]
    fn full_coverage_equals_exact(
        period in 64u64..2048,
        n in 500u64..3000,
        data_seed in any::<u64>(),
        sample_seed in any::<u64>(),
    ) {
        let m = walk_module();
        let (image, calls) = walk_inputs(n, data_seed);
        let (exact, exact_trace) =
            execute_traced(&m, image.clone(), &calls, &sim(), TraceConfig::outcomes()).unwrap();
        let cfg = SampleConfig {
            period,
            window: period,
            warmup: 0,
            seed: sample_seed,
            ..SampleConfig::default()
        };
        let s = run_sampled(&m, image, &calls, &sim(), &cfg, TraceConfig::outcomes()).unwrap();

        prop_assert_eq!(&s.rets, &exact.rets);
        prop_assert_eq!(s.image.digest(), exact.image.digest());
        prop_assert_eq!(s.ff_instructions, 0);
        prop_assert_eq!(s.detailed_instructions, s.exact_instructions);

        prop_assert_eq!(s.stats.instructions, exact.stats.instructions);
        prop_assert_eq!(s.stats.cycles, exact.stats.cycles);
        prop_assert_eq!(s.stats.branches, exact.stats.branches);
        prop_assert_eq!(s.stats.taken_branches, exact.stats.taken_branches);
        prop_assert_eq!(s.stats.mem, exact.stats.mem);

        // Outcome classification is exact too: issues equal the counter,
        // and the classified totals match the exact run's conserved table.
        prop_assert_eq!(s.outcomes.issued, exact.stats.mem.sw_pf_issued);
        prop_assert_eq!(s.outcomes.classified(), exact_trace.outcomes.total.classified());
        prop_assert_eq!(s.trace.outcomes.total.classified(), exact_trace.outcomes.total.classified());
    }

    /// Any schedule — sparse, dense, unwarmed, or a period longer than
    /// the whole run — keeps architectural results exact and the
    /// estimated timeline conserving.
    #[test]
    fn arbitrary_schedules_conserve(
        period in 1u64..200_000,
        window in 1u64..10_000,
        warmup in 0u64..10_000,
        warm_horizon in 0u64..20_000,
        sample_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let m = walk_module();
        let n = 2000u64;
        let (image, calls) = walk_inputs(n, data_seed);
        let (exact, _) =
            execute_traced(&m, image.clone(), &calls, &sim(), TraceConfig::outcomes()).unwrap();
        let cfg = SampleConfig {
            period, window, warmup, warm_horizon, seed: sample_seed, z: 1.96
        };
        let s = run_sampled(&m, image, &calls, &sim(), &cfg, TraceConfig::outcomes()).unwrap();

        // Architectural exactness.
        prop_assert_eq!(&s.rets, &exact.rets);
        prop_assert_eq!(s.image.digest(), exact.image.digest());

        // Every instruction ran exactly once, somewhere.
        prop_assert_eq!(s.exact_instructions, exact.stats.instructions);
        prop_assert_eq!(s.detailed_instructions + s.ff_instructions, s.exact_instructions);
        prop_assert_eq!(s.stats.instructions, s.exact_instructions);
        prop_assert!(s.measured_instructions <= s.detailed_instructions);
        prop_assert!(!s.windows.is_empty(), "window 0 is anchored at instruction 0");

        // The scaled timeline sums exactly to the estimated totals.
        let t = s.timeline.total();
        prop_assert_eq!(t.instructions, s.stats.instructions);
        prop_assert_eq!(t.cycles, s.stats.cycles);
        prop_assert_eq!(t.branches, s.stats.branches);
        prop_assert_eq!(t.taken_branches, s.stats.taken_branches);
        prop_assert_eq!(t.loads, s.stats.mem.loads);
        prop_assert_eq!(t.stores, s.stats.mem.stores);
        prop_assert_eq!(t.l1_hits, s.stats.mem.l1_hits);
        prop_assert_eq!(t.demand_fills, s.stats.mem.demand_fills);
        prop_assert_eq!(t.sw_pf_issued, s.stats.mem.sw_pf_issued);
        prop_assert_eq!(t.stall_dram, s.stats.mem.stall_dram);
        prop_assert_eq!(t.outcomes, s.outcomes);

        // Raw measured work is conserved into the estimate's inputs: the
        // per-window instruction sum is what the estimator scaled from.
        let raw: u64 = s.windows.iter().map(|w| w.instructions).sum();
        prop_assert_eq!(raw, s.measured_instructions);

        // Confidence summary is well-formed.
        prop_assert_eq!(s.ci.windows, s.windows.len() as u64);
        prop_assert!(s.ci.mean_cpi > 0.0);
        prop_assert!(s.ci.rel_half_width >= 0.0);
    }

    /// The whole sampled pipeline is a pure function of its inputs: same
    /// seed → byte-identical estimates; the schedule jitter actually
    /// depends on the seed.
    #[test]
    fn sampled_runs_are_deterministic(
        sample_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let m = walk_module();
        let (image, calls) = walk_inputs(1500, data_seed);
        let cfg = SampleConfig {
            period: 512,
            window: 64,
            warmup: 32,
            seed: sample_seed,
            ..SampleConfig::default()
        };
        let a = run_sampled(&m, image.clone(), &calls, &sim(), &cfg, TraceConfig::off()).unwrap();
        let b = run_sampled(&m, image, &calls, &sim(), &cfg, TraceConfig::off()).unwrap();
        prop_assert_eq!(a.stats.cycles, b.stats.cycles);
        prop_assert_eq!(a.stats.mem, b.stats.mem);
        prop_assert_eq!(a.timeline.samples.len(), b.timeline.samples.len());
        prop_assert_eq!(&a.windows, &b.windows);
        prop_assert_eq!(a.image.digest(), b.image.digest());
    }
}
