//! The sampled-simulation driver: alternates functional fast-forward on
//! the `apt-lir` interpreter with detailed warm-up and measurement on the
//! `apt-cpu` machine, then reconstructs full-run statistics.

use crate::estimate::{reconstruct, Confidence};
use crate::{Phase, SampleConfig, SampleError};
use apt_cpu::{CoreOutcome, Machine, MemImage, PerfStats, SimConfig};
use apt_lir::eval::RunState;
use apt_lir::{DecodedModule, Interp, Module};
use apt_selfprof::prof_scope;
use apt_timeline::{Timeline, WindowOutcomes, WindowSample};
use apt_trace::{PcOutcomes, TraceConfig, TraceReport};

/// Outcome of a sampled execution: architecturally exact results
/// (`rets`, `image`, `exact_instructions`) plus statistically
/// reconstructed performance estimates (`stats`, `timeline`, `outcomes`)
/// with a confidence summary.
pub struct SampledExecution {
    /// Reconstructed `perf stat` counters. `instructions` is exact; every
    /// other field is a ratio estimate from the measurement windows.
    pub stats: PerfStats,
    /// Return value of each call (architecturally exact).
    pub rets: Vec<Option<u64>>,
    /// Final data image (architecturally exact).
    pub image: MemImage,
    /// Estimated whole-run timeline: the measured windows rescaled to
    /// cover the full run. Field-wise, the windows sum exactly to
    /// [`SampledExecution::stats`].
    pub timeline: Timeline,
    /// Estimated whole-run prefetch-outcome mix.
    pub outcomes: WindowOutcomes,
    /// The raw (unscaled) measurement windows.
    pub windows: Vec<WindowSample>,
    /// Confidence summary over the per-window CPI samples.
    pub ci: Confidence,
    /// Exact retired-instruction count (every instruction is executed
    /// somewhere — functionally or detailed).
    pub exact_instructions: u64,
    /// Instructions simulated in detail (warm-up + measured).
    pub detailed_instructions: u64,
    /// Instructions inside measurement windows only.
    pub measured_instructions: u64,
    /// Instructions executed on the functional interpreter.
    pub ff_instructions: u64,
    /// Structured-trace report (empty when tracing is off).
    pub trace: TraceReport,
}

impl SampledExecution {
    /// Fraction of instructions simulated in detail — the knob the ≥5×
    /// throughput target rides on.
    pub fn detail_fraction(&self) -> f64 {
        if self.exact_instructions == 0 {
            0.0
        } else {
            self.detailed_instructions as f64 / self.exact_instructions as f64
        }
    }
}

/// Running Σcycles/Σinstructions over closed measurement windows — the
/// CPI estimate used to charge fast-forwarded instructions.
#[derive(Default)]
struct MeasuredSums {
    cycles: u64,
    insts: u64,
}

impl MeasuredSums {
    /// Estimated cycles for `steps` fast-forwarded instructions
    /// (half-rounded `steps · Σc / Σu`; CPI 1 before any window closes).
    fn est_cycles(&self, steps: u64) -> u64 {
        if self.insts == 0 {
            return steps;
        }
        let num = steps as u128 * self.cycles as u128 + self.insts as u128 / 2;
        (num / self.insts as u128) as u64
    }
}

/// Executes a call schedule under SMARTS sampling. Architectural results
/// (returns, memory image) are exact; performance statistics are
/// reconstructed estimates. The machine runs with LBR/PEBS/timeline
/// telemetry off — sampled runs are for *measurement*, profiling runs
/// stay fully detailed — and with structured tracing per `trace`.
pub fn run_sampled(
    module: &Module,
    image: MemImage,
    calls: &[(String, Vec<u64>)],
    sim: &SimConfig,
    sample: &SampleConfig,
    trace: TraceConfig,
) -> Result<SampledExecution, SampleError> {
    prof_scope!("sample/run");
    let cfg = sample.normalized();
    let mach_cfg = SimConfig {
        lbr_sample_period: 0,
        pebs_period: 0,
        timeline_window: 0,
        trace,
        ..*sim
    };
    let mut machine = Machine::new(module, mach_cfg, image);
    let decoded = DecodedModule::decode(module);

    let mut windows: Vec<WindowSample> = Vec::new();
    let mut rets = Vec::with_capacity(calls.len());
    let mut measured = MeasuredSums::default();
    let mut detailed_instructions = 0u64;
    let mut ff_instructions = 0u64;

    for (func, args) in calls {
        let mut st = machine.begin_call(func, args)?;
        let ret = loop {
            let pos = machine.stats().instructions;
            match cfg.phase_at(pos) {
                Phase::FastForward(budget) => {
                    prof_scope!("sample/ff");
                    let regs = std::mem::take(&mut st.regs);
                    let mut interp = Interp::resume(decoded.func(st.fid()), regs, st.block, 0);
                    // Beyond the warming horizon the cold stretch runs
                    // purely architecturally; only the tail of the
                    // fast-forward (the instructions whose cache residue
                    // the next detailed phase can actually observe) pays
                    // for hierarchy warming.
                    let cold = budget.saturating_sub(cfg.warm_horizon);
                    let mut state = RunState::Paused;
                    if cold > 0 {
                        state = interp.run(&mut machine.image, cold).map_err(|err| {
                            SampleError::Eval {
                                func: func.clone(),
                                err,
                            }
                        })?;
                    }
                    if state == RunState::Paused && interp.steps() < budget {
                        let warm = budget - interp.steps();
                        state = interp.run(&mut machine.warm_mem(), warm).map_err(|err| {
                            SampleError::Eval {
                                func: func.clone(),
                                err,
                            }
                        })?;
                    }
                    let steps = interp.steps();
                    machine.skip_ahead(steps, measured.est_cycles(steps));
                    ff_instructions += steps;
                    let (regs, block, _) = interp.into_state();
                    st.regs = regs;
                    st.block = block;
                    if let RunState::Done(v) = state {
                        break v;
                    }
                }
                Phase::Warm(budget) => {
                    prof_scope!("sample/warm");
                    let before = machine.stats().instructions;
                    let out = machine.run_core(&mut st, budget)?;
                    detailed_instructions += machine.stats().instructions - before;
                    if let CoreOutcome::Done(v) = out {
                        break v;
                    }
                }
                Phase::Measure(budget) => {
                    prof_scope!("sample/measure");
                    let s0 = machine.stats();
                    let (occ0, _) = machine.mshr_window_stats();
                    let o0 = machine.outcome_totals();
                    let out = machine.run_core(&mut st, budget)?;
                    let s1 = machine.stats();
                    let (occ1, peak) = machine.mshr_window_stats();
                    let o1 = machine.outcome_totals();
                    detailed_instructions += s1.instructions - s0.instructions;
                    measured.cycles += s1.cycles - s0.cycles;
                    measured.insts += s1.instructions - s0.instructions;
                    windows.push(window_delta(
                        windows.len() as u64,
                        &s0,
                        &s1,
                        occ1 - occ0,
                        peak,
                        &o0,
                        &o1,
                    ));
                    if let CoreOutcome::Done(v) = out {
                        break v;
                    }
                }
            }
        };
        rets.push(ret);
    }

    // Prefetches still unclassified after the last call finalize as
    // `useless`, attributed to the last measured window — mirroring the
    // detailed machine's end-of-run bookkeeping.
    let pending = machine.settle_outcomes();
    if pending > 0 {
        if let Some(last) = windows.last_mut() {
            last.outcomes.useless += pending;
        }
    }
    let trace_report = machine.take_trace();

    let exact_instructions = machine.stats().instructions;
    let measured_instructions = measured.insts;
    let est = reconstruct(exact_instructions, &windows, cfg.z);
    Ok(SampledExecution {
        stats: est.stats,
        rets,
        image: machine.image,
        timeline: est.timeline,
        outcomes: est.outcomes,
        windows,
        ci: est.ci,
        exact_instructions,
        detailed_instructions,
        measured_instructions,
        ff_instructions,
        trace: trace_report,
    })
}

/// One measurement window's counter deltas, in the exact shape the
/// detailed machine's own telemetry emits (`Machine::close_window`).
fn window_delta(
    index: u64,
    s0: &PerfStats,
    s1: &PerfStats,
    mshr_occ: u64,
    mshr_peak: usize,
    o0: &PcOutcomes,
    o1: &PcOutcomes,
) -> WindowSample {
    WindowSample {
        index,
        start_cycle: s0.cycles,
        end_cycle: s1.cycles,
        start_instr: s0.instructions,
        instructions: s1.instructions - s0.instructions,
        cycles: s1.cycles - s0.cycles,
        branches: s1.branches - s0.branches,
        taken_branches: s1.taken_branches - s0.taken_branches,
        loads: s1.mem.loads - s0.mem.loads,
        stores: s1.mem.stores - s0.mem.stores,
        l1_hits: s1.mem.l1_hits - s0.mem.l1_hits,
        l2_hits: s1.mem.l2_hits - s0.mem.l2_hits,
        llc_hits: s1.mem.llc_hits - s0.mem.llc_hits,
        demand_fills: s1.mem.demand_fills - s0.mem.demand_fills,
        fb_hits_swpf: s1.mem.fb_hits_swpf - s0.mem.fb_hits_swpf,
        fb_hits_other: s1.mem.fb_hits_other - s0.mem.fb_hits_other,
        sw_pf_issued: s1.mem.sw_pf_issued - s0.mem.sw_pf_issued,
        sw_pf_redundant: s1.mem.sw_pf_redundant - s0.mem.sw_pf_redundant,
        sw_pf_dropped_full: s1.mem.sw_pf_dropped_full - s0.mem.sw_pf_dropped_full,
        sw_pf_offcore: s1.mem.sw_pf_offcore - s0.mem.sw_pf_offcore,
        sw_pf_oncore: s1.mem.sw_pf_oncore - s0.mem.sw_pf_oncore,
        hw_pf_offcore: s1.mem.hw_pf_offcore - s0.mem.hw_pf_offcore,
        pf_evicted_unused: s1.mem.pf_evicted_unused - s0.mem.pf_evicted_unused,
        pf_used: s1.mem.pf_used - s0.mem.pf_used,
        stall_l2: s1.mem.stall_l2 - s0.mem.stall_l2,
        stall_llc: s1.mem.stall_llc - s0.mem.stall_llc,
        stall_dram: s1.mem.stall_dram - s0.mem.stall_dram,
        mshr_occ_cycles: mshr_occ,
        mshr_peak: mshr_peak as u64,
        outcomes: WindowOutcomes {
            issued: o1.issued - o0.issued,
            timely: o1.timely - o0.timely,
            late: o1.late - o0.late,
            early: o1.early - o0.early,
            useless: o1.useless - o0.useless,
            redundant: o1.redundant - o0.redundant,
            dropped: o1.dropped - o0.dropped,
        },
    }
}
