//! SMARTS-style sampled simulation.
//!
//! Detailed simulation on [`apt_cpu::Machine`] is the workspace's cost
//! ceiling: every retired instruction pays for cache probes, MSHR
//! bookkeeping, and stall accounting. SMARTS (Wunderlich et al., ISCA '03)
//! showed that periodically *sampling* short detailed measurement windows
//! out of a functionally fast-forwarded run recovers whole-run statistics
//! to tight confidence bounds at a fraction of the cost. This crate is
//! that driver for the APT-GET evaluation machine:
//!
//! * **Fast-forward** — between windows, the program runs on the
//!   threaded-dispatch `apt-lir` interpreter ([`apt_lir::Interp`]) against
//!   [`apt_cpu::Machine::warm_mem`], which keeps cache tag/LRU state warm
//!   (state-only: no counters, stalls, or tracer events) while the
//!   architectural image stays exact.
//! * **Warm-up** — a configurable detailed prefix before each window is
//!   simulated in full but its boundary is invisible to the estimator:
//!   warm-up retires re-train the stride prefetcher and re-populate MSHR
//!   timing that functional warming cannot reproduce.
//! * **Measure** — the machine runs detailed for the window length; the
//!   window's counter deltas become one statistical sample.
//!
//! Because both the interpreter and the detailed core pause at basic-block
//! boundaries with the same paused-state convention (register file +
//! next block, φ-copies applied), control transfers between the two are
//! exact state hand-offs — no architectural drift, and the final memory
//! image and return values are identical to a fully detailed run.
//!
//! Reconstruction ([`reconstruct`]) uses the ratio estimator
//! `est = round(N · Σcⱼ / Σuⱼ)` in 128-bit integer arithmetic, where `N`
//! is the exact retired-instruction count (known: every instruction is
//! executed somewhere), `uⱼ` the instructions and `cⱼ` the counter delta
//! of window `j`. At 100 % coverage the estimate collapses to the exact
//! sum. Per-window scaled values are re-apportioned with cumulative
//! rounding so they conserve the estimated totals exactly — the bench
//! layer's timeline-conservation assert holds on sampled runs too.

mod driver;
mod estimate;

pub use driver::{run_sampled, SampledExecution};
pub use estimate::{reconstruct, Confidence, Reconstruction};

use std::fmt;

/// Sampling schedule: a measurement window of `window` instructions every
/// `period` instructions, preceded by `warmup` detailed (but unmeasured)
/// instructions. Window 0 is anchored at instruction 0 with no warm-up or
/// jitter, so cold-start behaviour is captured exactly; later windows are
/// placed at `k·period + warmup + jitter(k)` where the per-period jitter
/// is drawn deterministically from `seed` (SMARTS' systematic sampling
/// with random phase, safe against periodic program behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Instructions per sampling period.
    pub period: u64,
    /// Detailed measured instructions per period.
    pub window: u64,
    /// Detailed unmeasured instructions run before each window.
    pub warmup: u64,
    /// Seed for the per-period placement jitter.
    pub seed: u64,
    /// Functional-warming horizon: only the last `warm_horizon`
    /// fast-forwarded instructions before each detailed phase warm the
    /// cache hierarchy; anything further out runs purely architecturally.
    /// Cache state laid down earlier than the horizon would be churned
    /// through by the warming stretch anyway, so a finite horizon trades
    /// a little long-reuse-distance LLC fidelity for a large fast-forward
    /// speedup. `u64::MAX` warms every fast-forwarded instruction.
    pub warm_horizon: u64,
    /// Normal quantile for confidence intervals (1.96 ≈ 95 %).
    pub z: f64,
}

impl Default for SampleConfig {
    fn default() -> SampleConfig {
        SampleConfig {
            period: 131_072,
            window: 2_048,
            warmup: 1_024,
            seed: 0,
            warm_horizon: 8_192,
            z: 1.96,
        }
    }
}

/// What the driver should do next, with the remaining instruction budget
/// of the phase. Budgets are advisory: both execution engines pause at
/// block boundaries, so a phase may overshoot by up to one block — the
/// driver re-derives the phase from the actual position each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Run functionally (with cache warming) for this many instructions.
    FastForward(u64),
    /// Run detailed but unmeasured for this many instructions.
    Warm(u64),
    /// Run detailed and record the counter deltas as a sample.
    Measure(u64),
}

impl SampleConfig {
    /// Clamps the schedule into a well-formed one: `period ≥ 1`,
    /// `1 ≤ window ≤ period`, `warmup ≤ period − window`. In particular a
    /// period longer than the whole run degenerates to a single anchored
    /// window, and `window == period` means 100 % coverage (no
    /// fast-forward at all, estimates exact).
    pub fn normalized(&self) -> SampleConfig {
        let mut c = *self;
        c.period = c.period.max(1);
        c.window = c.window.clamp(1, c.period);
        c.warmup = c.warmup.min(c.period - c.window);
        c
    }

    /// Measurement-window bounds `[start, end)` of period `k`, on the
    /// retired-instruction axis. Requires a normalized config.
    pub fn window_bounds(&self, k: u64) -> (u64, u64) {
        let base = k.saturating_mul(self.period);
        let off = if k == 0 {
            0
        } else {
            self.warmup + self.jitter(k)
        };
        let start = base.saturating_add(off);
        (start, start.saturating_add(self.window))
    }

    /// The phase covering instruction position `pos`, with the remaining
    /// budget to the phase boundary. Requires a normalized config.
    pub fn phase_at(&self, pos: u64) -> Phase {
        let k = pos / self.period;
        let (ws, we) = self.window_bounds(k);
        let warm_start = ws
            .saturating_sub(self.warmup)
            .max(k.saturating_mul(self.period));
        if pos < warm_start {
            Phase::FastForward(warm_start - pos)
        } else if pos < ws {
            Phase::Warm(ws - pos)
        } else if pos < we {
            Phase::Measure(we - pos)
        } else {
            // Past this period's window: fast-forward to the next period's
            // warm-up start (which is strictly past `pos`, since
            // `we ≤ (k+1)·period ≤ warm start of period k+1`).
            let (ws1, _) = self.window_bounds(k + 1);
            let warm1 = ws1
                .saturating_sub(self.warmup)
                .max((k + 1).saturating_mul(self.period));
            Phase::FastForward(warm1.saturating_sub(pos).max(1))
        }
    }

    /// Deterministic placement jitter for period `k`, uniform over the
    /// period's slack (`period − window − warmup`). Keyed on `(seed, k)`
    /// so any period's placement is computable in O(1) — the schedule does
    /// not depend on visit order, which keeps parallel campaigns
    /// byte-identical at any `--jobs`.
    fn jitter(&self, k: u64) -> u64 {
        let slack = self.period - self.window - self.warmup;
        if slack == 0 {
            return 0;
        }
        splitmix64(self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (slack + 1)
    }
}

/// SplitMix64 finalizer: a full-avalanche mix used to derive per-period
/// jitter from `(seed, k)`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampled-simulation failure: either the detailed machine faulted, or the
/// functional interpreter did (same error space as `apt_lir::eval`).
#[derive(Debug)]
pub enum SampleError {
    /// The detailed machine raised a simulation error.
    Sim(apt_cpu::SimError),
    /// The fast-forward interpreter raised an evaluation error.
    Eval {
        /// Function being interpreted.
        func: String,
        /// The underlying evaluation error.
        err: apt_lir::eval::EvalError,
    },
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Sim(e) => write!(f, "detailed simulation failed: {e}"),
            SampleError::Eval { func, err } => {
                write!(f, "fast-forward of `{func}` failed: {err}")
            }
        }
    }
}

impl std::error::Error for SampleError {}

impl From<apt_cpu::SimError> for SampleError {
    fn from(e: apt_cpu::SimError) -> SampleError {
        SampleError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_degenerate_configs() {
        let c = SampleConfig {
            period: 0,
            window: 0,
            warmup: 99,
            ..SampleConfig::default()
        }
        .normalized();
        assert_eq!((c.period, c.window, c.warmup), (1, 1, 0));

        let c = SampleConfig {
            period: 100,
            window: 1000,
            warmup: 50,
            ..SampleConfig::default()
        }
        .normalized();
        assert_eq!((c.period, c.window, c.warmup), (100, 100, 0));
    }

    #[test]
    fn window_zero_is_anchored_cold() {
        let c = SampleConfig::default().normalized();
        assert_eq!(c.window_bounds(0), (0, c.window));
        assert!(matches!(c.phase_at(0), Phase::Measure(b) if b == c.window));
    }

    #[test]
    fn phases_tile_the_instruction_axis() {
        // Walking the axis by each phase's budget must visit FF → Warm →
        // Measure in order within every period, with no gaps, holes, or
        // infinite loops.
        let c = SampleConfig {
            period: 1000,
            window: 100,
            warmup: 30,
            seed: 7,
            ..SampleConfig::default()
        }
        .normalized();
        let mut pos = 0u64;
        let mut measured = 0u64;
        let mut windows = 0u64;
        while pos < 10_000 {
            let (step, is_measure) = match c.phase_at(pos) {
                Phase::FastForward(b) => (b, false),
                Phase::Warm(b) => (b, false),
                Phase::Measure(b) => (b, true),
            };
            assert!(step > 0, "zero budget at pos {pos}");
            if is_measure {
                measured += step;
                windows += 1;
            }
            pos += step;
        }
        assert_eq!(windows, 10, "one window per period");
        assert_eq!(measured, 10 * 100);
    }

    #[test]
    fn full_coverage_never_fast_forwards() {
        let c = SampleConfig {
            period: 64,
            window: 64,
            warmup: 0,
            seed: 1,
            ..SampleConfig::default()
        }
        .normalized();
        for pos in 0..1000 {
            assert!(
                matches!(c.phase_at(pos), Phase::Measure(_)),
                "pos {pos} not measured at 100% coverage"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let c = SampleConfig {
            period: 1000,
            window: 100,
            warmup: 100,
            seed: 42,
            ..SampleConfig::default()
        }
        .normalized();
        for k in 1..200 {
            let (ws, we) = c.window_bounds(k);
            assert_eq!((ws, we), c.window_bounds(k), "placement must be pure");
            assert!(ws >= k * c.period + c.warmup);
            assert!(we <= (k + 1) * c.period);
        }
        // A different seed moves at least one window.
        let c2 = SampleConfig { seed: 43, ..c };
        assert!((1..200).any(|k| c.window_bounds(k) != c2.window_bounds(k)));
    }
}
