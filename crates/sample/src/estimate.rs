//! Whole-run reconstruction from measurement-window samples.
//!
//! Every counter is estimated with the SMARTS ratio estimator
//! `est = round(N · Σcⱼ / Σuⱼ)` where `N` is the exact instruction count,
//! `uⱼ` the instructions and `cⱼ` the counter delta of window `j` — in
//! 128-bit integer arithmetic with half-rounding, so estimates are
//! deterministic and collapse to the exact totals at 100 % coverage.
//! The per-window scaled values are re-apportioned with cumulative
//! rounding (largest-remainder style), which conserves the estimated
//! total exactly regardless of rounding residue.

use apt_cpu::PerfStats;
use apt_timeline::{Timeline, WindowOutcomes, WindowSample};

/// Confidence summary over the per-window CPI samples (CPI is the
/// quantity whose variance drives all cycle-derived estimates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Confidence {
    /// Number of measurement windows.
    pub windows: u64,
    /// Mean per-window CPI.
    pub mean_cpi: f64,
    /// Sample standard deviation of per-window CPI.
    pub cpi_std: f64,
    /// Relative CI half-width `z·s / (√n · mean)` — the SMARTS error
    /// bound the accuracy harness checks against.
    pub rel_half_width: f64,
}

/// Reconstructed whole-run statistics.
pub struct Reconstruction {
    /// Estimated run totals (`instructions` exact).
    pub stats: PerfStats,
    /// Measured windows rescaled to cover the whole run; sums exactly to
    /// `stats` field-wise.
    pub timeline: Timeline,
    /// Estimated prefetch-outcome totals (sum of the scaled windows).
    pub outcomes: WindowOutcomes,
    /// CPI confidence summary (over the *raw* windows).
    pub ci: Confidence,
}

/// Half-rounded ratio estimate `total_u · Σc / Σu` in 128-bit arithmetic.
fn ratio(total_u: u64, sum_c: u64, sum_u: u64) -> u64 {
    if sum_u == 0 {
        return 0;
    }
    let num = total_u as u128 * sum_c as u128 + sum_u as u128 / 2;
    (num / sum_u as u128) as u64
}

/// Splits `total` across windows proportionally to `values`, with
/// cumulative rounding: the outputs sum to `total` exactly, each output
/// is within one unit of its real-valued share, and windows with a zero
/// measured value get zero.
fn apportion(total: u64, values: &[u64]) -> Vec<u64> {
    let sum: u128 = values.iter().map(|&v| v as u128).sum();
    let mut out = vec![0u64; values.len()];
    if sum == 0 {
        return out;
    }
    let mut cum = 0u128;
    let mut prev = 0u64;
    for (slot, &v) in out.iter_mut().zip(values) {
        cum += v as u128;
        let upto = ((cum * total as u128 + sum / 2) / sum) as u64;
        *slot = upto - prev;
        prev = upto;
    }
    out
}

/// Reconstructs whole-run statistics from measurement windows. `total_insts`
/// is the exact retired-instruction count of the full run.
pub fn reconstruct(total_insts: u64, windows: &[WindowSample], z: f64) -> Reconstruction {
    let sum_u: u64 = windows.iter().map(|w| w.instructions).sum();
    if sum_u == 0 {
        // No measured work (empty call schedule): everything except the
        // exact instruction count is unknown; report an empty timeline
        // (window 0 = "sampling off" to downstream conservation checks).
        let stats = PerfStats {
            instructions: total_insts,
            ..PerfStats::default()
        };
        return Reconstruction {
            stats,
            timeline: Timeline::default(),
            outcomes: WindowOutcomes::default(),
            ci: Confidence::default(),
        };
    }

    let mut scaled: Vec<WindowSample> = windows.to_vec();
    macro_rules! scale {
        ($($field:ident).+) => {{
            let vals: Vec<u64> = windows.iter().map(|w| w.$($field).+).collect();
            let total = ratio(total_insts, vals.iter().sum(), sum_u);
            for (w, v) in scaled.iter_mut().zip(apportion(total, &vals)) {
                w.$($field).+ = v;
            }
        }};
    }
    scale!(instructions);
    scale!(cycles);
    scale!(branches);
    scale!(taken_branches);
    scale!(loads);
    scale!(stores);
    scale!(l1_hits);
    scale!(l2_hits);
    scale!(llc_hits);
    scale!(demand_fills);
    scale!(fb_hits_swpf);
    scale!(fb_hits_other);
    scale!(sw_pf_issued);
    scale!(sw_pf_redundant);
    scale!(sw_pf_dropped_full);
    scale!(sw_pf_offcore);
    scale!(sw_pf_oncore);
    scale!(hw_pf_offcore);
    scale!(pf_evicted_unused);
    scale!(pf_used);
    scale!(stall_l2);
    scale!(stall_llc);
    scale!(stall_dram);
    scale!(mshr_occ_cycles);
    scale!(outcomes.issued);
    scale!(outcomes.timely);
    scale!(outcomes.late);
    scale!(outcomes.early);
    scale!(outcomes.useless);
    scale!(outcomes.redundant);
    scale!(outcomes.dropped);
    // mshr_peak is an extremum, not an extensive quantity: keep the raw
    // per-window peaks unscaled.

    // Re-anchor the scaled windows on contiguous cumulative axes so they
    // tile the estimated run the way real telemetry tiles a detailed one.
    let mut cyc = 0u64;
    let mut ins = 0u64;
    for (j, w) in scaled.iter_mut().enumerate() {
        w.index = j as u64;
        w.start_cycle = cyc;
        cyc += w.cycles;
        w.end_cycle = cyc;
        w.start_instr = ins;
        ins += w.instructions;
    }

    let n = scaled.len() as u64;
    let timeline = Timeline {
        window: (cyc / n).max(1),
        samples: scaled,
    };
    let t = timeline.total();
    let mut stats = PerfStats {
        instructions: t.instructions,
        cycles: t.cycles,
        branches: t.branches,
        taken_branches: t.taken_branches,
        ..PerfStats::default()
    };
    stats.mem.loads = t.loads;
    stats.mem.stores = t.stores;
    stats.mem.l1_hits = t.l1_hits;
    stats.mem.l2_hits = t.l2_hits;
    stats.mem.llc_hits = t.llc_hits;
    stats.mem.demand_fills = t.demand_fills;
    stats.mem.fb_hits_swpf = t.fb_hits_swpf;
    stats.mem.fb_hits_other = t.fb_hits_other;
    stats.mem.sw_pf_issued = t.sw_pf_issued;
    stats.mem.sw_pf_redundant = t.sw_pf_redundant;
    stats.mem.sw_pf_dropped_full = t.sw_pf_dropped_full;
    stats.mem.sw_pf_offcore = t.sw_pf_offcore;
    stats.mem.sw_pf_oncore = t.sw_pf_oncore;
    stats.mem.hw_pf_offcore = t.hw_pf_offcore;
    stats.mem.pf_evicted_unused = t.pf_evicted_unused;
    stats.mem.pf_used = t.pf_used;
    stats.mem.stall_l2 = t.stall_l2;
    stats.mem.stall_llc = t.stall_llc;
    stats.mem.stall_dram = t.stall_dram;

    Reconstruction {
        stats,
        outcomes: t.outcomes,
        ci: confidence(windows, z),
        timeline,
    }
}

/// CPI mean / spread / relative CI half-width over the raw windows.
fn confidence(windows: &[WindowSample], z: f64) -> Confidence {
    let cpis: Vec<f64> = windows
        .iter()
        .filter(|w| w.instructions > 0)
        .map(|w| w.cycles as f64 / w.instructions as f64)
        .collect();
    let n = cpis.len();
    if n == 0 {
        return Confidence::default();
    }
    let mean = cpis.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1) as f64
    };
    let std = var.sqrt();
    let half = if mean > 0.0 && n > 0 {
        z * std / ((n as f64).sqrt() * mean)
    } else {
        0.0
    };
    Confidence {
        windows: n as u64,
        mean_cpi: mean,
        cpi_std: std,
        rel_half_width: half,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(instr: u64, cycles: u64, loads: u64) -> WindowSample {
        WindowSample {
            instructions: instr,
            cycles,
            loads,
            outcomes: WindowOutcomes {
                issued: loads / 2,
                timely: loads / 4,
                late: loads / 2 - loads / 4,
                ..WindowOutcomes::default()
            },
            ..WindowSample::default()
        }
    }

    #[test]
    fn apportion_conserves_and_bounds_error() {
        let vals = [3u64, 0, 7, 11, 2];
        let total = 1000u64;
        let out = apportion(total, &vals);
        assert_eq!(out.iter().sum::<u64>(), total);
        assert_eq!(out[1], 0, "zero measured value gets zero share");
        let sum: u64 = vals.iter().sum();
        for (o, v) in out.iter().zip(vals) {
            let exactly = v as f64 * total as f64 / sum as f64;
            assert!((*o as f64 - exactly).abs() <= 1.0, "{o} vs {exactly}");
        }
    }

    #[test]
    fn full_coverage_reconstruction_is_exact() {
        let windows = vec![win(100, 250, 30), win(50, 75, 10), win(25, 100, 20)];
        let n: u64 = windows.iter().map(|w| w.instructions).sum();
        let r = reconstruct(n, &windows, 1.96);
        assert_eq!(r.stats.instructions, 175);
        assert_eq!(r.stats.cycles, 425);
        assert_eq!(r.stats.mem.loads, 60);
        assert_eq!(r.outcomes.issued, 30);
        // Scaled windows equal the raw windows field-wise.
        for (s, w) in r.timeline.samples.iter().zip(&windows) {
            assert_eq!(s.instructions, w.instructions);
            assert_eq!(s.cycles, w.cycles);
            assert_eq!(s.loads, w.loads);
            assert_eq!(s.outcomes, w.outcomes);
        }
    }

    #[test]
    fn estimates_scale_by_coverage_and_conserve() {
        // 175 measured of 1750 total → everything scales ×10.
        let windows = vec![win(100, 250, 30), win(50, 75, 10), win(25, 100, 20)];
        let r = reconstruct(1750, &windows, 1.96);
        assert_eq!(r.stats.instructions, 1750);
        assert_eq!(r.stats.cycles, 4250);
        assert_eq!(r.stats.mem.loads, 600);
        let t = r.timeline.total();
        assert_eq!(t.instructions, r.stats.instructions);
        assert_eq!(t.cycles, r.stats.cycles);
        assert_eq!(t.loads, r.stats.mem.loads);
        assert_eq!(t.outcomes, r.outcomes);
        // Windows tile contiguous cumulative axes.
        let mut cyc = 0;
        for (j, w) in r.timeline.samples.iter().enumerate() {
            assert_eq!(w.index, j as u64);
            assert_eq!(w.start_cycle, cyc);
            assert_eq!(w.end_cycle, cyc + w.cycles);
            cyc = w.end_cycle;
        }
    }

    #[test]
    fn empty_windows_reconstruct_to_bare_instructions() {
        let r = reconstruct(42, &[], 1.96);
        assert_eq!(r.stats.instructions, 42);
        assert_eq!(r.stats.cycles, 0);
        assert!(r.timeline.is_empty());
        assert_eq!(r.timeline.window, 0);
        assert_eq!(r.ci.windows, 0);
    }

    #[test]
    fn confidence_tracks_cpi_spread() {
        let tight = vec![win(100, 200, 0), win(100, 200, 0), win(100, 200, 0)];
        let r = reconstruct(1000, &tight, 1.96);
        assert_eq!(r.ci.windows, 3);
        assert!((r.ci.mean_cpi - 2.0).abs() < 1e-12);
        assert_eq!(r.ci.rel_half_width, 0.0);

        let loose = vec![win(100, 100, 0), win(100, 300, 0)];
        let r = reconstruct(1000, &loose, 1.96);
        assert!(r.ci.rel_half_width > 0.5);
    }
}
