//! End-to-end scrape test: a real `MetricsServer` on an ephemeral port,
//! a real `TcpStream` client, and the in-repo Prometheus parser
//! validating the body — the whole path an external Prometheus would
//! exercise, with no mocks in between.

use apt_metrics::{prom, MetricsServer, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Binds an ephemeral-port server, or `None` when the sandbox forbids
/// sockets — the tests then skip rather than fail.
fn try_server(registry: Registry) -> Option<MetricsServer> {
    match MetricsServer::bind("127.0.0.1:0", registry) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("skipping scrape test: cannot bind a socket here ({e})");
            None
        }
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// Splits an HTTP/1.0 response into (status line, body).
fn split_response(response: &str) -> (&str, &str) {
    let status = response.lines().next().unwrap_or_default();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    (status, body)
}

#[test]
fn scraped_exposition_parses_and_tracks_updates() {
    let registry = Registry::new();
    let cells = registry.counter(
        "apt_eval_cells_total",
        "Finished cells",
        &[("variant", "aptget")],
    );
    let occupancy = registry.gauge("apt_pool_workers", "Live workers", &[]);
    let Some(server) = try_server(registry) else {
        return;
    };
    cells.add(7);
    occupancy.set(3.0);

    let response = http_get(server.addr(), "/metrics");
    let (status, body) = split_response(&response);
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{response}"
    );

    // The body must survive the strict in-repo parser, not just a
    // substring check.
    let exposition = prom::parse(body).expect("scraped body is valid exposition format");
    assert_eq!(
        exposition.value("apt_eval_cells_total", &[("variant", "aptget")]),
        Some(7.0)
    );
    assert_eq!(exposition.value("apt_pool_workers", &[]), Some(3.0));
    assert_eq!(
        exposition
            .types
            .get("apt_eval_cells_total")
            .map(String::as_str),
        Some("counter")
    );

    // A second scrape observes the counter moving — the server reads the
    // live registry, not a snapshot taken at bind time.
    cells.add(5);
    let response = http_get(server.addr(), "/metrics");
    let (_, body) = split_response(&response);
    let exposition = prom::parse(body).expect("second scrape parses");
    assert_eq!(
        exposition.value("apt_eval_cells_total", &[("variant", "aptget")]),
        Some(12.0)
    );
    server.shutdown();
}

#[test]
fn non_metrics_paths_are_rejected() {
    let Some(server) = try_server(Registry::new()) else {
        return;
    };
    for path in ["/metricsz", "/favicon.ico", "/metrics/extra"] {
        let (status, body) = {
            let response = http_get(server.addr(), path);
            let (s, b) = split_response(&response);
            (s.to_string(), b.to_string())
        };
        assert_eq!(status, "HTTP/1.0 404 Not Found", "path {path}");
        assert_eq!(body, "not found\n", "path {path}");
    }
    // The root path is an alias for /metrics and must still parse.
    let response = http_get(server.addr(), "/");
    let (status, body) = split_response(&response);
    assert_eq!(status, "HTTP/1.0 200 OK");
    prom::parse(body).expect("empty-registry exposition parses");
    server.shutdown();
}
