//! Property tests for the Prometheus exposition: whatever the registry
//! renders must be valid exposition format and round-trip through the
//! in-repo parser (`prom::parse`), with counters staying monotone across
//! re-renders and histogram buckets staying cumulative.

use apt_metrics::prom;
use apt_metrics::registry::Registry;
use apt_metrics::render_prometheus;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Label values drawn from a palette chosen to stress the escaper:
/// the three escaped characters (`\`, `"`, newline) plus the label-set
/// structural characters (`,`, `{`, `}`, `=`), spaces, and non-ASCII.
fn label_value() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            'a', 'Z', '0', '_', '\\', '"', '\n', ',', '{', '}', '=', ' ', 'µ', '→',
        ]),
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

const FAMILIES: [&str; 4] = [
    "apt_prop_a_total",
    "apt_prop_b_total",
    "apt_prop_c_total",
    "apt_prop_d_total",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of counter families and nasty label values renders to a
    /// document that parses, declares each `# TYPE` exactly once, and
    /// reports every accumulated value exactly.
    #[test]
    fn render_parse_round_trips(
        entries in prop::collection::vec((0usize..4, label_value(), 0u64..1000), 1..10)
    ) {
        let registry = Registry::new();
        let mut expected: BTreeMap<(usize, String), u64> = BTreeMap::new();
        for (family, value, add) in &entries {
            registry
                .counter(FAMILIES[*family], "property counter", &[("v", value)])
                .add(*add);
            *expected.entry((*family, value.clone())).or_default() += *add;
        }

        let text = render_prometheus(&registry);
        let doc = prom::parse(&text).map_err(TestCaseError::fail)?;
        for ((family, value), total) in &expected {
            prop_assert_eq!(
                doc.value(FAMILIES[*family], &[("v", value)]),
                Some(*total as f64),
                "family {} value {:?} in:\n{}", FAMILIES[*family], value, text
            );
        }

        // `# TYPE` appears exactly once per family (the parser rejects
        // duplicates; here we also pin the count to the distinct families).
        let type_lines = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        let distinct: std::collections::BTreeSet<usize> =
            expected.keys().map(|(f, _)| *f).collect();
        prop_assert_eq!(type_lines, distinct.len());
        prop_assert_eq!(doc.types.len(), distinct.len());
    }

    /// Re-rendering after more increments never shows a counter going
    /// backwards.
    #[test]
    fn counter_re_renders_are_monotone(adds in prop::collection::vec(0u64..50, 1..8)) {
        let registry = Registry::new();
        let counter = registry.counter("apt_prop_mono_total", "h", &[]);
        let mut last = -1.0;
        for add in adds {
            counter.add(add);
            let doc = prom::parse(&render_prometheus(&registry)).map_err(TestCaseError::fail)?;
            let v = doc.value("apt_prop_mono_total", &[]).expect("series exists");
            prop_assert!(v >= last, "counter went backwards: {v} < {last}");
            last = v;
        }
    }

    /// Rendered histogram buckets are cumulative and consistent with the
    /// `_count` / `_sum` series.
    #[test]
    fn histogram_buckets_stay_cumulative(obs in prop::collection::vec(0u64..5000, 0..40)) {
        let registry = Registry::new();
        let hist = registry.histogram("apt_prop_h_us", "h", &[], &[10, 100, 1000]);
        for v in &obs {
            hist.observe(*v);
        }
        let text = render_prometheus(&registry);
        let doc = prom::parse(&text).map_err(TestCaseError::fail)?;
        let counts: Vec<f64> = doc
            .series("apt_prop_h_us_bucket")
            .iter()
            .map(|s| s.value)
            .collect();
        prop_assert_eq!(counts.len(), 4, "three finite buckets plus +Inf:\n{}", text);
        prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]), "not cumulative: {:?}", counts);
        prop_assert_eq!(*counts.last().unwrap(), obs.len() as f64);
        prop_assert_eq!(doc.value("apt_prop_h_us_count", &[]), Some(obs.len() as f64));
        prop_assert_eq!(
            doc.value("apt_prop_h_us_sum", &[]),
            Some(obs.iter().sum::<u64>() as f64)
        );
    }

    /// Escaping alone: any palette string survives render → parse as a
    /// label value.
    #[test]
    fn nasty_label_values_round_trip(value in label_value()) {
        let registry = Registry::new();
        registry.counter("apt_prop_esc_total", "h", &[("k", &value)]).inc();
        let text = render_prometheus(&registry);
        let doc = prom::parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(
            doc.value("apt_prop_esc_total", &[("k", &value)]),
            Some(1.0),
            "value {:?} in:\n{}", value, text
        );
    }
}
