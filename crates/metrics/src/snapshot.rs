//! Benchmark snapshots (`BENCH_<n>.json`) and the regression gate.
//!
//! A snapshot records, per workload, the simulated cycle counts of the
//! three configurations the paper compares (baseline, Ainsworth & Jones
//! style next-line, APT-GET profile-guided) plus the prefetch-outcome
//! mix of the APT-GET run and campaign-level wall time / cache stats.
//!
//! The gate (`bench-gate` subcommand) compares a fresh snapshot against
//! a committed baseline. Simulated cycles are deterministic, so the
//! default tolerance only needs to absorb intentional model changes;
//! wall times are recorded for humans and never gated on.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Prefetch-outcome mix of one APT-GET cell, copied from the tracer's
/// `OutcomeTable` totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeMix {
    pub issued: u64,
    pub timely: u64,
    pub late: u64,
    pub early: u64,
    pub useless: u64,
    pub redundant: u64,
    pub dropped: u64,
}

impl OutcomeMix {
    fn write_json(&self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{{\n{indent}  \"issued\": {},\n{indent}  \"timely\": {},\n{indent}  \"late\": {},\n{indent}  \"early\": {},\n{indent}  \"useless\": {},\n{indent}  \"redundant\": {},\n{indent}  \"dropped\": {}\n{indent}}}",
            self.issued, self.timely, self.late, self.early, self.useless, self.redundant,
            self.dropped
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(OutcomeMix {
            issued: v.u64_field("issued")?,
            timely: v.u64_field("timely")?,
            late: v.u64_field("late")?,
            early: v.u64_field("early")?,
            useless: v.u64_field("useless")?,
            redundant: v.u64_field("redundant")?,
            dropped: v.u64_field("dropped")?,
        })
    }
}

/// One detected execution phase of a workload's baseline run, projected
/// onto the APT-GET run (plain data — phase *detection* lives in
/// `apt-timeline`; this crate only stores and gates the result).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBench {
    /// Stable label in detection order: "p0", "p1", …
    pub label: String,
    /// Normalized instruction-progress range of the phase in the baseline
    /// run (the cross-variant alignment axis).
    pub start_frac: f64,
    pub end_frac: f64,
    /// Baseline cycles spent inside the phase (exact).
    pub baseline_cycles: u64,
    /// APT-GET cycles over the same progress range (apportioned).
    pub aptget_cycles: u64,
    /// Eq. 1-style implied prefetch distance of the phase.
    pub implied_distance: u64,
}

impl PhaseBench {
    fn write_json(&self, out: &mut String, indent: &str) {
        out.push_str("{\n");
        let _ = write!(out, "{indent}  \"label\": ");
        json::write_str(out, &self.label);
        let _ = write!(out, ",\n{indent}  \"start_frac\": ");
        json::write_f64(out, self.start_frac);
        let _ = write!(out, ",\n{indent}  \"end_frac\": ");
        json::write_f64(out, self.end_frac);
        let _ = write!(
            out,
            ",\n{indent}  \"baseline_cycles\": {},\n{indent}  \"aptget_cycles\": {},\n{indent}  \"implied_distance\": {}\n{indent}}}",
            self.baseline_cycles, self.aptget_cycles, self.implied_distance
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PhaseBench {
            label: v.str_field("label")?.to_string(),
            start_frac: v.num_field("start_frac")?,
            end_frac: v.num_field("end_frac")?,
            baseline_cycles: v.u64_field("baseline_cycles")?,
            aptget_cycles: v.u64_field("aptget_cycles")?,
            implied_distance: v.u64_field("implied_distance")?,
        })
    }
}

/// Sampled-simulation provenance and accuracy of one workload row
/// (present when the producing campaign ran with `--sampled`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampledBench {
    /// Max |estimated − exact| / exact on cycles across the workload's
    /// cells. 0 when the campaign ran without `--sampled-check`.
    pub cycle_err: f64,
    /// Max |estimated − exact| / exact on IPC across the cells.
    pub ipc_err: f64,
    /// Mean fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Total measurement windows across the workload's cells.
    pub windows: u64,
    /// True when the exact cross-check ran, i.e. the errors are measured
    /// rather than vacuous zeros — only then does the gate judge them.
    pub checked: bool,
}

impl SampledBench {
    fn write_json(&self, out: &mut String, indent: &str) {
        out.push_str("{\n");
        let _ = write!(out, "{indent}  \"cycle_err\": ");
        json::write_f64(out, self.cycle_err);
        let _ = write!(out, ",\n{indent}  \"ipc_err\": ");
        json::write_f64(out, self.ipc_err);
        let _ = write!(out, ",\n{indent}  \"detail_fraction\": ");
        json::write_f64(out, self.detail_fraction);
        let _ = write!(
            out,
            ",\n{indent}  \"windows\": {},\n{indent}  \"checked\": {}\n{indent}}}",
            self.windows, self.checked
        );
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SampledBench {
            cycle_err: v.num_field("cycle_err")?,
            ipc_err: v.num_field("ipc_err")?,
            detail_fraction: v.num_field("detail_fraction")?,
            windows: v.u64_field("windows")?,
            checked: v.get("checked").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Per-workload benchmark results.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBench {
    pub workload: String,
    pub baseline_cycles: u64,
    pub aj_cycles: u64,
    pub aptget_cycles: u64,
    /// baseline / A&J cycles.
    pub speedup_aj: f64,
    /// baseline / APT-GET cycles.
    pub speedup_aptget: f64,
    /// Outcome mix of the APT-GET cell (absent when outcome tracing was off).
    pub outcomes: Option<OutcomeMix>,
    /// Per-phase breakdown (empty when the producing campaign ran without
    /// timelines). Old snapshots without the field parse as empty; old
    /// parsers ignore the field — the schema number stays at 1.
    pub phases: Vec<PhaseBench>,
    /// Wall time of the slowest cell for this workload, microseconds.
    /// Informational only — never compared by the gate.
    pub wall_us: u64,
    /// Simulated cycles per host wall-clock second across the workload's
    /// cells — the simulator-throughput trajectory that `perf-history`
    /// plots. Informational (host-dependent), never compared by the
    /// gate; absent in old snapshots and parsed as 0 (the schema stays
    /// at 1, same precedent as `phases`).
    pub cycles_per_sec: f64,
    /// Sampled-simulation accuracy record (present only when the
    /// producing campaign ran `--sampled`; absent in old snapshots and
    /// parsed as `None` — the schema stays at 1, same precedent as
    /// `outcomes`). When `checked`, the gate bounds `cycle_err`.
    pub sampled: Option<SampledBench>,
}

impl WorkloadBench {
    pub fn new(workload: &str, baseline_cycles: u64, aj_cycles: u64, aptget_cycles: u64) -> Self {
        let speedup = |denom: u64| {
            if denom == 0 {
                0.0
            } else {
                baseline_cycles as f64 / denom as f64
            }
        };
        WorkloadBench {
            workload: workload.to_string(),
            baseline_cycles,
            aj_cycles,
            aptget_cycles,
            speedup_aj: speedup(aj_cycles),
            speedup_aptget: speedup(aptget_cycles),
            outcomes: None,
            phases: Vec::new(),
            wall_us: 0,
            cycles_per_sec: 0.0,
            sampled: None,
        }
    }
}

/// A full benchmark snapshot, one per campaign run with `--bench-out`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchSnapshot {
    /// Bumped if the JSON layout changes incompatibly.
    pub schema: u32,
    /// Free-form provenance string ("apteval --jobs 2 --scale 0.02 ...").
    pub config: String,
    /// Host fingerprint (`os-arch-<n>c`, see [`host_fingerprint`]) so
    /// `perf-history` can flag cross-host throughput comparisons.
    /// Informational; absent in old snapshots and parsed as empty.
    pub host: String,
    pub workloads: Vec<WorkloadBench>,
    /// Campaign wall time, microseconds. Informational only.
    pub wall_us: u64,
    /// Profile-cache hits / misses during the campaign.
    pub cache_hits: u64,
    pub cache_misses: u64,
}

pub const SNAPSHOT_SCHEMA: u32 = 1;

/// A coarse host identity (`os-arch-<n>c`, e.g. `linux-x86_64-16c`) for
/// snapshot provenance. Deliberately free of hostnames or serials: just
/// enough for `perf-history` to warn when a throughput trend mixes
/// machines that cannot be compared.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "{}-{}-{}c",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cores
    )
}

impl BenchSnapshot {
    pub fn new(config: String) -> Self {
        BenchSnapshot {
            schema: SNAPSHOT_SCHEMA,
            config,
            ..Default::default()
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        let _ = write!(out, "{}", self.schema);
        out.push_str(",\n  \"config\": ");
        json::write_str(&mut out, &self.config);
        out.push_str(",\n  \"host\": ");
        json::write_str(&mut out, &self.host);
        let _ = write!(
            out,
            ",\n  \"wall_us\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"workloads\": [",
            self.wall_us, self.cache_hits, self.cache_misses
        );
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"workload\": ");
            json::write_str(&mut out, &w.workload);
            let _ = write!(
                out,
                ",\n      \"baseline_cycles\": {},\n      \"aj_cycles\": {},\n      \"aptget_cycles\": {},\n      \"speedup_aj\": ",
                w.baseline_cycles, w.aj_cycles, w.aptget_cycles
            );
            json::write_f64(&mut out, w.speedup_aj);
            out.push_str(",\n      \"speedup_aptget\": ");
            json::write_f64(&mut out, w.speedup_aptget);
            let _ = write!(out, ",\n      \"wall_us\": {}", w.wall_us);
            out.push_str(",\n      \"cycles_per_sec\": ");
            json::write_f64(&mut out, w.cycles_per_sec);
            if let Some(mix) = &w.outcomes {
                out.push_str(",\n      \"outcomes\": ");
                mix.write_json(&mut out, "      ");
            }
            if let Some(s) = &w.sampled {
                out.push_str(",\n      \"sampled\": ");
                s.write_json(&mut out, "      ");
            }
            if !w.phases.is_empty() {
                out.push_str(",\n      \"phases\": [");
                for (j, p) in w.phases.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str("\n        ");
                    p.write_json(&mut out, "        ");
                }
                out.push_str("\n      ]");
            }
            out.push_str("\n    }");
        }
        if !self.workloads.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let schema = doc.u64_field("schema")? as u32;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "snapshot schema {schema} unsupported (expected {SNAPSHOT_SCHEMA})"
            ));
        }
        let mut snap = BenchSnapshot::new(doc.str_field("config")?.to_string());
        if let Some(host) = doc.get("host").and_then(Json::as_str) {
            snap.host = host.to_string();
        }
        snap.wall_us = doc.u64_field("wall_us")?;
        snap.cache_hits = doc.u64_field("cache_hits")?;
        snap.cache_misses = doc.u64_field("cache_misses")?;
        let workloads = doc
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or("missing `workloads` array")?;
        for w in workloads {
            let mut bench = WorkloadBench::new(
                w.str_field("workload")?,
                w.u64_field("baseline_cycles")?,
                w.u64_field("aj_cycles")?,
                w.u64_field("aptget_cycles")?,
            );
            // Stored speedups win over recomputed ones so the gate compares
            // exactly what the producing run reported.
            bench.speedup_aj = w.num_field("speedup_aj")?;
            bench.speedup_aptget = w.num_field("speedup_aptget")?;
            bench.wall_us = w.u64_field("wall_us")?;
            if let Some(cps) = w.get("cycles_per_sec").and_then(Json::as_f64) {
                bench.cycles_per_sec = cps;
            }
            if let Some(mix) = w.get("outcomes") {
                bench.outcomes = Some(OutcomeMix::from_json(mix)?);
            }
            if let Some(s) = w.get("sampled") {
                bench.sampled = Some(SampledBench::from_json(s)?);
            }
            if let Some(phases) = w.get("phases").and_then(Json::as_arr) {
                for p in phases {
                    bench.phases.push(PhaseBench::from_json(p)?);
                }
            }
            snap.workloads.push(bench);
        }
        Ok(snap)
    }
}

/// Gate configuration.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated relative regression, e.g. `0.05` = 5 %. Applies
    /// to per-configuration cycle counts (higher is a regression for all
    /// of them) and to speedups (lower is a regression).
    pub tolerance: f64,
    /// When set, additionally gate each recorded phase's APT-GET cycles,
    /// so a regression confined to one execution phase is reported by
    /// name ("BFS/p2") instead of diluted into the whole-run total. A
    /// baseline workload without phase data is an error in this mode.
    pub per_phase: bool,
    /// Maximum tolerated sampled-vs-exact relative cycle error. Judged on
    /// any current workload carrying a *checked* [`SampledBench`] record:
    /// a sampled snapshot whose estimation error exceeds this bound fails
    /// the gate regardless of how its (estimated) cycles compare.
    pub max_sampled_cycle_err: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance: 0.05,
            per_phase: false,
            max_sampled_cycle_err: 0.05,
        }
    }
}

/// One gate comparison line.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    pub workload: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// Signed relative change, positive = worse.
    pub regression: f64,
    pub failed: bool,
}

/// Result of gating a snapshot against a baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    pub checks: Vec<GateCheck>,
    /// Structural problems (missing workloads, schema issues).
    pub errors: Vec<String>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.checks.iter().all(|c| !c.failed)
    }

    /// Every workload (or `workload/phase`) with at least one failed
    /// check, deduplicated, in first-failure order — so a gate failure
    /// names *all* regressed workloads in one message instead of making
    /// the user fix and re-run one at a time.
    pub fn offending_workloads(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in self.checks.iter().filter(|c| c.failed) {
            if !out.contains(&c.workload) {
                out.push(c.workload.clone());
            }
        }
        out
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for err in &self.errors {
            let _ = writeln!(out, "ERROR  {err}");
        }
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{}  {:<10} {:<16} baseline {:>14.4}  current {:>14.4}  change {:>+8.3}%",
                if c.failed { "FAIL " } else { "ok   " },
                c.workload,
                c.metric,
                c.baseline,
                c.current,
                c.regression * 100.0
            );
        }
        let offenders = self.offending_workloads();
        let _ = writeln!(
            out,
            "bench-gate: {} checks, {} failures, {} errors => {}{}",
            self.checks.len(),
            self.checks.iter().filter(|c| c.failed).count(),
            self.errors.len(),
            if self.passed() { "PASS" } else { "FAIL" },
            if offenders.is_empty() {
                String::new()
            } else {
                format!(" (regressed: {})", offenders.join(", "))
            }
        );
        out
    }
}

/// Compares `current` against `baseline`, flagging regressions beyond
/// `cfg.tolerance`. Cycle counts regress upward; speedups regress
/// downward. Improvements never fail the gate.
pub fn gate(baseline: &BenchSnapshot, current: &BenchSnapshot, cfg: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    for base in &baseline.workloads {
        let Some(cur) = current
            .workloads
            .iter()
            .find(|w| w.workload == base.workload)
        else {
            report.errors.push(format!(
                "workload `{}` missing from current snapshot",
                base.workload
            ));
            continue;
        };
        let mut check = |metric: &'static str, b: f64, c: f64, higher_is_worse: bool| {
            let regression = if b == 0.0 {
                if c == 0.0 {
                    0.0
                } else if higher_is_worse {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            } else if higher_is_worse {
                (c - b) / b
            } else {
                (b - c) / b
            };
            report.checks.push(GateCheck {
                workload: base.workload.clone(),
                metric,
                baseline: b,
                current: c,
                regression,
                failed: regression > cfg.tolerance,
            });
        };
        check(
            "baseline_cycles",
            base.baseline_cycles as f64,
            cur.baseline_cycles as f64,
            true,
        );
        check(
            "aj_cycles",
            base.aj_cycles as f64,
            cur.aj_cycles as f64,
            true,
        );
        check(
            "aptget_cycles",
            base.aptget_cycles as f64,
            cur.aptget_cycles as f64,
            true,
        );
        check("speedup_aj", base.speedup_aj, cur.speedup_aj, false);
        check(
            "speedup_aptget",
            base.speedup_aptget,
            cur.speedup_aptget,
            false,
        );
        // A checked sampled record is gated against the absolute error
        // bound, not against the baseline: an estimate that drifted from
        // its own exact run is untrustworthy even if it looks fast.
        if let Some(s) = cur.sampled.filter(|s| s.checked) {
            report.checks.push(GateCheck {
                workload: base.workload.clone(),
                metric: "sampled_cycle_err",
                baseline: cfg.max_sampled_cycle_err,
                current: s.cycle_err,
                regression: s.cycle_err - cfg.max_sampled_cycle_err,
                failed: s.cycle_err > cfg.max_sampled_cycle_err,
            });
        }
        if cfg.per_phase {
            if base.phases.is_empty() {
                report.errors.push(format!(
                    "workload `{}` has no phase data in the baseline (re-record it \
                     from a campaign with timelines enabled)",
                    base.workload
                ));
                continue;
            }
            for phase in &base.phases {
                let Some(cur_phase) = cur.phases.iter().find(|p| p.label == phase.label) else {
                    report.errors.push(format!(
                        "phase `{}/{}` missing from current snapshot",
                        base.workload, phase.label
                    ));
                    continue;
                };
                let b = phase.aptget_cycles as f64;
                let c = cur_phase.aptget_cycles as f64;
                let regression = if b == 0.0 {
                    if c == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (c - b) / b
                };
                report.checks.push(GateCheck {
                    workload: format!("{}/{}", base.workload, phase.label),
                    metric: "phase_aptget_cycles",
                    baseline: b,
                    current: c,
                    regression,
                    failed: regression > cfg.tolerance,
                });
            }
        }
    }
    for cur in &current.workloads {
        if !baseline
            .workloads
            .iter()
            .any(|w| w.workload == cur.workload)
        {
            report.errors.push(format!(
                "workload `{}` absent from baseline (update bench/baseline.json)",
                cur.workload
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut snap = BenchSnapshot::new("apteval --jobs 2 --scale 0.02".to_string());
        snap.host = "linux-x86_64-8c".to_string();
        snap.wall_us = 123_456;
        snap.cache_hits = 4;
        snap.cache_misses = 2;
        let mut w = WorkloadBench::new("BFS", 1_000_000, 900_000, 700_000);
        w.wall_us = 55_000;
        w.cycles_per_sec = 47_272_727.27;
        w.outcomes = Some(OutcomeMix {
            issued: 100,
            timely: 60,
            late: 20,
            early: 5,
            useless: 10,
            redundant: 5,
            dropped: 0,
        });
        w.phases = vec![
            PhaseBench {
                label: "p0".to_string(),
                start_frac: 0.0,
                end_frac: 0.25,
                baseline_cycles: 300_000,
                aptget_cycles: 280_000,
                implied_distance: 4,
            },
            PhaseBench {
                label: "p1".to_string(),
                start_frac: 0.25,
                end_frac: 1.0,
                baseline_cycles: 700_000,
                aptget_cycles: 420_000,
                implied_distance: 23,
            },
        ];
        snap.workloads.push(w);
        snap.workloads.push(WorkloadBench::new(
            "RandAcc", 2_000_000, 1_500_000, 1_200_000,
        ));
        snap
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json();
        let back = BenchSnapshot::from_json(&text).expect("valid snapshot JSON");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = BenchSnapshot::new(String::new());
        let back = BenchSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"schema\": 1", "\"schema\": 99");
        assert!(BenchSnapshot::from_json(&text).is_err());
    }

    #[test]
    fn identical_snapshots_pass_the_gate() {
        let snap = sample();
        let report = gate(&snap, &snap, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.checks.len(), 10);
    }

    #[test]
    fn cycle_regression_beyond_tolerance_fails() {
        let base = sample();
        let mut cur = sample();
        // 10 % more APT-GET cycles on BFS: beyond the default 5 % tolerance.
        cur.workloads[0].aptget_cycles = 770_000;
        cur.workloads[0].speedup_aptget = 1_000_000.0 / 770_000.0;
        let report = gate(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        let failed: Vec<_> = report.checks.iter().filter(|c| c.failed).collect();
        assert!(failed.iter().any(|c| c.metric == "aptget_cycles"));
        assert!(failed.iter().any(|c| c.metric == "speedup_aptget"));
        // A looser tolerance admits the same change.
        let loose = GateConfig {
            tolerance: 0.2,
            ..GateConfig::default()
        };
        assert!(gate(&base, &cur, &loose).passed());
    }

    #[test]
    fn snapshots_without_host_or_throughput_fields_still_parse() {
        // Snapshots written before the perf-history fields existed.
        let stripped = sample()
            .to_json()
            .replace(",\n  \"host\": \"linux-x86_64-8c\"", "")
            .replace(",\n      \"cycles_per_sec\": 47272727.27", "")
            .replace(",\n      \"cycles_per_sec\": 0", "");
        assert!(!stripped.contains("cycles_per_sec"));
        let back = BenchSnapshot::from_json(&stripped).expect("old-layout snapshot");
        assert_eq!(back.host, "");
        assert!(back.workloads.iter().all(|w| w.cycles_per_sec == 0.0));
        assert_eq!(back.workloads[0].wall_us, 55_000);
    }

    #[test]
    fn host_fingerprint_is_stable_and_descriptive() {
        let a = host_fingerprint();
        assert_eq!(a, host_fingerprint());
        assert!(a.contains(std::env::consts::ARCH));
        assert!(a.ends_with('c'));
    }

    /// Satellite: a failing gate must name *every* regressed workload in
    /// the one summary line, not just the first one encountered.
    #[test]
    fn gate_failure_names_all_offending_workloads() {
        let base = sample();
        let mut cur = sample();
        // Plant two independent regressions: BFS APT-GET cycles +10 %,
        // RandAcc A&J cycles +50 %.
        cur.workloads[0].aptget_cycles = 770_000;
        cur.workloads[0].speedup_aptget = 1_000_000.0 / 770_000.0;
        cur.workloads[1].aj_cycles = 2_250_000;
        cur.workloads[1].speedup_aj = 2_000_000.0 / 2_250_000.0;
        let report = gate(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.offending_workloads(), ["BFS", "RandAcc"]);
        let rendered = report.render();
        let summary = rendered.lines().last().unwrap();
        assert!(
            summary.contains("FAIL (regressed: BFS, RandAcc)"),
            "summary must list both offenders: {summary}"
        );
        // A passing gate keeps the plain summary.
        let clean = gate(&base, &base, &GateConfig::default());
        assert!(clean.render().lines().last().unwrap().ends_with("PASS"));
    }

    #[test]
    fn improvements_never_fail() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].aptget_cycles = 350_000; // 2x faster
        cur.workloads[0].speedup_aptget = 1_000_000.0 / 350_000.0;
        assert!(gate(&base, &cur, &GateConfig::default()).passed());
    }

    #[test]
    fn per_phase_gate_names_the_offending_phase() {
        let cfg = GateConfig {
            per_phase: true,
            ..GateConfig::default()
        };
        let base = sample();
        let mut cur = sample();
        // RandAcc carries no phase data — that alone must fail the mode.
        let report = gate(&base, &cur, &cfg);
        assert!(!report.passed());
        assert!(report.errors.iter().any(|e| e.contains("RandAcc")));

        // Give both snapshots RandAcc phases, regress only BFS/p1: the
        // whole-run totals stay untouched, yet the gate points at p1.
        let filler = PhaseBench {
            label: "p0".to_string(),
            start_frac: 0.0,
            end_frac: 1.0,
            baseline_cycles: 2_000_000,
            aptget_cycles: 1_200_000,
            implied_distance: 9,
        };
        let mut base = sample();
        base.workloads[1].phases = vec![filler.clone()];
        let mut cur2 = sample();
        cur2.workloads[1].phases = vec![filler];
        cur2.workloads[0].phases[1].aptget_cycles = 500_000; // ~19 % worse
        let report = gate(&base, &cur2, &cfg);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<_> = report.checks.iter().filter(|c| c.failed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].workload, "BFS/p1");
        assert_eq!(failed[0].metric, "phase_aptget_cycles");
        // Same snapshots pass when gated whole-run only.
        assert!(gate(&base, &cur2, &GateConfig::default()).passed());

        // A current snapshot that lost a phase is a structural error.
        cur.workloads[0].phases.pop();
        cur.workloads[1].phases = vec![PhaseBench {
            label: "p0".to_string(),
            start_frac: 0.0,
            end_frac: 1.0,
            baseline_cycles: 1,
            aptget_cycles: 1,
            implied_distance: 0,
        }];
        let mut base3 = sample();
        base3.workloads[1].phases = cur.workloads[1].phases.clone();
        let report = gate(&base3, &cur, &cfg);
        assert!(report.errors.iter().any(|e| e.contains("BFS/p1")));
    }

    #[test]
    fn missing_and_extra_workloads_are_errors() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[1].workload = "Camel".to_string();
        let report = gate(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.errors.len(), 2); // RandAcc missing + Camel extra
    }
}
