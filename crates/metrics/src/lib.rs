//! # apt-metrics
//!
//! Workspace-wide observability for the APT-GET reproduction:
//!
//! * [`registry`] — named counter/gauge/histogram families with labels.
//!   Disabled handles cost a single branch (the `TraceConfig::off`
//!   discipline); enabled updates are one relaxed atomic RMW.
//! * [`prom`] — deterministic Prometheus text exposition (format 0.0.4)
//!   plus a small validating parser used by the property tests.
//! * [`serve`] — a std-only `GET /metrics` scrape endpoint.
//! * [`progress`] — live campaign progress on stderr (stdout stays
//!   byte-identical for the determinism invariants).
//! * [`snapshot`] — `BENCH_<n>.json` benchmark snapshots and the
//!   `bench-gate` regression comparison.
//! * [`json`] — the hand-rolled JSON subset backing the snapshots (the
//!   workspace is offline: no serde).
//!
//! Metric naming convention: `apt_<crate>_<name>_<unit>` — see
//! DESIGN.md §13.

pub mod json;
pub mod progress;
pub mod prom;
pub mod registry;
pub mod serve;
pub mod snapshot;

pub use progress::{Progress, ProgressReporter, ProgressSnapshot};
pub use prom::{render_prometheus, Exposition, Sample};
pub use registry::{Counter, Gauge, Histogram, MetricKind, Registry, WALL_US_BUCKETS};
pub use serve::MetricsServer;
pub use snapshot::{
    gate, host_fingerprint, BenchSnapshot, GateConfig, GateReport, OutcomeMix, PhaseBench,
    SampledBench, WorkloadBench, SNAPSHOT_SCHEMA,
};
