//! A minimal hand-rolled JSON subset: enough to write and read the
//! bench snapshots (`BENCH_*.json`) without serde (DESIGN.md §8 policy:
//! no external serialisation crates).
//!
//! Supported: objects, arrays, strings (with the standard escapes),
//! finite numbers, booleans, null. Numbers parse to `f64`; every integer
//! the snapshot stores is well below 2^53, so the trip is exact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// `obj.field` as f64, with a readable error.
    pub fn num_field(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
    }

    /// `obj.field` as u64, with a readable error.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// `obj.field` as &str, with a readable error.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }
}

/// Escapes and quotes a JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 (finite values only; `Display` is shortest-round-trip).
pub fn write_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "JSON cannot hold {v}");
    let _ = write!(out, "{v}");
}

/// Parses a JSON document (the whole string must be one value).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut obj = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                obj.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{s}` at byte {start}: {e}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("valid");
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(doc.get("b").unwrap().str_field("c").unwrap(), "x\ny");
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("e"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "q\"w\\e\nr\tt\u{1F600}";
        let mut out = String::new();
        write_str(&mut out, nasty);
        assert_eq!(parse(&out).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn f64_round_trips_via_display() {
        for v in [0.0, 1.25, -17.0, 1e-9, 123456789.125, f64::MAX] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v), "{v}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn u64_accessors_reject_fractions() {
        let doc = parse(r#"{"i": 42, "f": 1.5}"#).unwrap();
        assert_eq!(doc.u64_field("i").unwrap(), 42);
        assert!(doc.u64_field("f").is_err());
        assert!(doc.u64_field("missing").is_err());
    }
}
