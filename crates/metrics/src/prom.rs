//! Prometheus text exposition (format 0.0.4) and a tiny in-repo parser.
//!
//! The renderer is deterministic: families in name order, series in
//! canonical label order, `# HELP` / `# TYPE` emitted once per family.
//! The parser exists for the property tests (render → parse must
//! round-trip every value and validate the format) and for `bench-gate`
//! style tooling that wants to diff two expositions; it covers exactly
//! the subset the renderer emits plus whitespace tolerance.

use std::collections::BTreeMap;

use crate::registry::{render_cell, LabelSet, Registry};

/// Renders the whole registry in Prometheus text format. A disabled
/// registry renders to the empty string.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    registry.visit(|name, family, labels, cell| {
        if name != last_family {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.type_name());
            out.push('\n');
            last_family = name.to_string();
        }
        render_cell(&mut out, name, labels, cell);
    });
    out
}

/// Formats an `f64` the exposition format accepts (`Display` for finite
/// values is shortest-round-trip in Rust; specials use Prometheus
/// spellings).
pub fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value: backslash, double-quote and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a HELP string (backslash and newline only, per the format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Writes one `name{labels[,extra]} value` line.
pub(crate) fn render_series_line(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let n_labels = labels.len() + usize::from(extra.is_some());
    if n_labels > 0 {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Labels in file order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations in order of appearance: family name → kind.
    pub types: BTreeMap<String, String>,
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples of one series (exact name match).
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single value of `name{labels}` (labels compared as sets).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples.iter().find_map(|s| {
            let mut got = s.labels.clone();
            got.sort();
            (s.name == name && got == want).then_some(s.value)
        })
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse()
            .map_err(|e| format!("bad value `{other}`: {e}")),
    }
}

/// Parses an exposition document, validating the invariants the property
/// tests rely on:
///
/// * every `# TYPE` family is declared at most once;
/// * every sample's family (allowing `_bucket`/`_sum`/`_count` suffixes
///   under a `histogram` type) has a preceding `# TYPE` declaration;
/// * metric and label names are valid identifiers; label values use only
///   the three escapes `\\`, `\"`, `\n`.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let kind = it.next().ok_or_else(|| err("TYPE missing kind".into()))?;
            if !crate::registry::valid_name(name) {
                return Err(err(format!("invalid family name `{name}`")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(format!("unknown type `{kind}`")));
            }
            if out
                .types
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(err(format!("duplicate TYPE for `{name}`")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment.
        }
        let sample = parse_sample_line(line).map_err(err)?;
        let family = base_family(&out.types, &sample.name)
            .ok_or_else(|| err(format!("sample `{}` has no TYPE declaration", sample.name)))?;
        debug_assert!(out.types.contains_key(&family));
        out.samples.push(sample);
    }
    Ok(out)
}

/// Resolves a sample name to its declared family, honouring histogram
/// suffixes. Returns `None` when no declaration matches.
fn base_family(types: &BTreeMap<String, String>, name: &str) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let rest = it
                .next()
                .ok_or_else(|| format!("missing value in `{line}`"))?;
            ((name, None), rest.trim())
        }
    };
    let (name, raw_labels) = name_and_labels;
    if !crate::registry::valid_name(name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    let labels = match raw_labels {
        Some(raw) => parse_labels(raw)?,
        None => Vec::new(),
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value: parse_value(value)?,
    })
}

fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        // Key up to '='.
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label name in `{raw}`"));
        }
        if !crate::registry::valid_name(&key) {
            return Err(format!("invalid label name `{key}`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}` value not quoted"));
        }
        // Quoted value with escapes.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape `\\{other:?}` in label `{key}`")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value for label `{key}`")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected `{c}` after label value")),
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_all_kinds() {
        let r = Registry::new();
        r.counter("apt_c_total", "a counter", &[("w", "BFS")])
            .add(3);
        r.gauge("apt_g", "a gauge", &[]).set(1.5);
        let h = r.histogram("apt_h_us", "a histogram", &[("w", "IS")], &[10, 100]);
        h.observe(7);
        h.observe(70);
        h.observe(700);

        let text = render_prometheus(&r);
        let doc = parse(&text).expect("valid exposition");
        assert_eq!(
            doc.types.get("apt_c_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(doc.value("apt_c_total", &[("w", "BFS")]), Some(3.0));
        assert_eq!(doc.value("apt_g", &[]), Some(1.5));
        assert_eq!(doc.value("apt_h_us_count", &[("w", "IS")]), Some(3.0));
        assert_eq!(doc.value("apt_h_us_sum", &[("w", "IS")]), Some(777.0));
        assert_eq!(
            doc.value("apt_h_us_bucket", &[("w", "IS"), ("le", "100")]),
            Some(2.0)
        );
        assert_eq!(
            doc.value("apt_h_us_bucket", &[("w", "IS"), ("le", "+Inf")]),
            Some(3.0)
        );
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let nasty = "a\\b\"c\nd,e}f";
        let r = Registry::new();
        r.counter("apt_esc_total", "h", &[("k", nasty)]).inc();
        let text = render_prometheus(&r);
        let doc = parse(&text).expect("valid");
        assert_eq!(doc.value("apt_esc_total", &[("k", nasty)]), Some(1.0));
    }

    #[test]
    fn disabled_registry_renders_empty() {
        assert_eq!(render_prometheus(&Registry::disabled()), "");
        assert!(parse("").unwrap().samples.is_empty());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("# TYPE apt_x counter\n# TYPE apt_x counter\n").is_err());
        assert!(parse("apt_x 1\n").is_err(), "sample without TYPE");
        assert!(parse("# TYPE apt_x counter\napt_x{k=\"v\" 1\n").is_err());
        assert!(parse("# TYPE apt_x counter\napt_x{9k=\"v\"} 1\n").is_err());
        assert!(parse("# TYPE apt_x counter\napt_x nope\n").is_err());
        assert!(parse("# TYPE apt_x wat\n").is_err());
    }

    #[test]
    fn special_values_parse() {
        let doc = parse("# TYPE apt_s gauge\napt_s +Inf\n").unwrap();
        assert_eq!(doc.value("apt_s", &[]), Some(f64::INFINITY));
        assert_eq!(format_f64(f64::NAN), "NaN");
        assert_eq!(format_f64(2.0), "2");
        assert_eq!(format_f64(0.25), "0.25");
    }
}
