//! Live campaign progress on stderr.
//!
//! Campaign results go to stdout and are byte-identical across `--jobs`
//! values and cache states (a PR 2 invariant), so progress must live
//! entirely on stderr and default to off. The `Progress` handle follows
//! the registry's discipline: a disabled handle is a `None` and every
//! update is a single branch.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    start: Instant,
    total: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sim_cycles: AtomicU64,
    busy_us: AtomicU64,
    workers: AtomicU64,
}

/// Shared campaign-progress handle. Cloning is cheap; a default handle
/// is disabled and every update on it is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    inner: Option<Arc<State>>,
}

impl Progress {
    pub fn new() -> Self {
        Progress {
            inner: Some(Arc::new(State {
                start: Instant::now(),
                total: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                sim_cycles: AtomicU64::new(0),
                busy_us: AtomicU64::new(0),
                workers: AtomicU64::new(1),
            })),
        }
    }

    pub fn disabled() -> Self {
        Progress::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn set_total(&self, jobs: u64) {
        if let Some(s) = &self.inner {
            s.total.store(jobs, Ordering::Relaxed);
        }
    }

    pub fn set_workers(&self, workers: u64) {
        if let Some(s) = &self.inner {
            s.workers.store(workers.max(1), Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn job_started(&self) {
        if let Some(s) = &self.inner {
            s.in_flight.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a finished job along with the simulated cycles it covered
    /// and the wall time its worker spent busy on it.
    #[inline]
    pub fn job_finished(&self, sim_cycles: u64, busy_us: u64) {
        if let Some(s) = &self.inner {
            s.in_flight.fetch_sub(1, Ordering::Relaxed);
            s.completed.fetch_add(1, Ordering::Relaxed);
            s.sim_cycles.fetch_add(sim_cycles, Ordering::Relaxed);
            s.busy_us.fetch_add(busy_us, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn cache_hit(&self) {
        if let Some(s) = &self.inner {
            s.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn cache_miss(&self) {
        if let Some(s) = &self.inner {
            s.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time view; `None` on a disabled handle.
    pub fn snapshot(&self) -> Option<ProgressSnapshot> {
        let s = self.inner.as_ref()?;
        Some(ProgressSnapshot {
            wall: s.start.elapsed(),
            total: s.total.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            in_flight: s.in_flight.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            sim_cycles: s.sim_cycles.load(Ordering::Relaxed),
            busy_us: s.busy_us.load(Ordering::Relaxed),
            workers: s.workers.load(Ordering::Relaxed).max(1),
        })
    }
}

/// Point-in-time campaign progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    pub wall: Duration,
    pub total: u64,
    pub completed: u64,
    pub in_flight: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub sim_cycles: u64,
    pub busy_us: u64,
    pub workers: u64,
}

impl ProgressSnapshot {
    /// Profile-cache hit ratio in [0, 1]; `None` before any lookup.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        (lookups > 0).then(|| self.cache_hits as f64 / lookups as f64)
    }

    /// Simulated cycles per wall-clock second, across all workers.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / secs
        }
    }

    /// Mean worker utilization in [0, 1]: busy wall time summed over
    /// workers divided by `workers * elapsed`.
    pub fn utilization(&self) -> f64 {
        let capacity_us = self.wall.as_micros() as f64 * self.workers as f64;
        if capacity_us <= 0.0 {
            0.0
        } else {
            (self.busy_us as f64 / capacity_us).min(1.0)
        }
    }

    /// Remaining-time estimate from mean completed-job throughput.
    /// `None` until at least one job finished *and* measurable wall time
    /// elapsed — a zero-wall snapshot would otherwise extrapolate a
    /// zero-second ETA for any amount of remaining work.
    pub fn eta(&self) -> Option<Duration> {
        if self.completed == 0 || self.total <= self.completed || self.wall.is_zero() {
            return None;
        }
        let per_job = self.wall.as_secs_f64() / self.completed as f64;
        Some(Duration::from_secs_f64(
            per_job * (self.total - self.completed) as f64,
        ))
    }

    /// One status line, e.g.
    /// `[ 3/12] 2 in flight | util 87% | cache 4/6 hit | 1.2e8 sim cyc/s | eta 12.3s`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "[{:>3}/{}] {} in flight | util {:>3.0}%",
            self.completed,
            self.total,
            self.in_flight,
            self.utilization() * 100.0
        );
        match self.cache_hit_ratio() {
            Some(r) => {
                line.push_str(&format!(
                    " | cache {}/{} hit ({:.0}%)",
                    self.cache_hits,
                    self.cache_hits + self.cache_misses,
                    r * 100.0
                ));
            }
            None => line.push_str(" | cache --"),
        }
        line.push_str(&format!(" | {:.2e} sim cyc/s", self.cycles_per_sec()));
        match self.eta() {
            Some(eta) => line.push_str(&format!(" | eta {:.1}s", eta.as_secs_f64())),
            None if self.total > 0 && self.completed >= self.total => line.push_str(" | done"),
            None => line.push_str(" | eta --:--"),
        }
        line
    }
}

/// Background thread that renders `Progress` to stderr at a fixed
/// interval. Uses `\r` in-place updates when stderr is a terminal and
/// plain lines otherwise (CI logs).
#[derive(Debug)]
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    pub fn spawn(progress: Progress, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("apt-progress".to_string())
            .spawn(move || {
                let tty = std::io::stderr().is_terminal();
                let mut last = String::new();
                while !stop2.load(Ordering::Relaxed) {
                    if let Some(snap) = progress.snapshot() {
                        let line = snap.render();
                        if line != last {
                            if tty {
                                eprint!("\r\x1b[2K{line}");
                                let _ = std::io::stderr().flush();
                            } else {
                                eprintln!("{line}");
                            }
                            last = line;
                        }
                    }
                    std::thread::sleep(interval);
                }
                // Final state, on its own completed line.
                if let Some(snap) = progress.snapshot() {
                    if tty {
                        eprint!("\r\x1b[2K{}\n", snap.render());
                        let _ = std::io::stderr().flush();
                    } else {
                        eprintln!("{}", snap.render());
                    }
                }
            })
            .expect("spawn progress reporter");
        ProgressReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and waits for its final line.
    pub fn finish(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let p = Progress::disabled();
        assert!(!p.is_enabled());
        p.set_total(10);
        p.job_started();
        p.job_finished(100, 100);
        p.cache_hit();
        assert!(p.snapshot().is_none());
    }

    #[test]
    fn counts_flow_into_snapshot() {
        let p = Progress::new();
        p.set_total(4);
        p.set_workers(2);
        p.job_started();
        p.job_started();
        p.job_finished(1_000, 500);
        p.cache_hit();
        p.cache_hit();
        p.cache_miss();
        let snap = p.snapshot().unwrap();
        assert_eq!(snap.total, 4);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.sim_cycles, 1_000);
        assert_eq!(snap.busy_us, 500);
        assert_eq!(snap.cache_hit_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn eta_requires_progress_and_remaining_work() {
        let mut snap = ProgressSnapshot {
            wall: Duration::from_secs(10),
            total: 4,
            completed: 2,
            in_flight: 1,
            cache_hits: 0,
            cache_misses: 0,
            sim_cycles: 0,
            busy_us: 0,
            workers: 2,
        };
        let eta = snap.eta().unwrap();
        assert!((eta.as_secs_f64() - 10.0).abs() < 1e-9, "{eta:?}");
        snap.completed = 0;
        assert!(snap.eta().is_none());
        snap.completed = 4;
        assert!(snap.eta().is_none());
    }

    #[test]
    fn eta_is_a_placeholder_when_it_cannot_be_estimated() {
        // Zero wall time with work remaining: no throughput to
        // extrapolate from, so eta() must decline rather than claim 0 s.
        let snap = ProgressSnapshot {
            wall: Duration::ZERO,
            total: 8,
            completed: 2,
            in_flight: 1,
            cache_hits: 0,
            cache_misses: 0,
            sim_cycles: 0,
            busy_us: 0,
            workers: 2,
        };
        assert!(snap.eta().is_none());
        assert!(snap.render().contains("| eta --:--"), "{}", snap.render());
        // No completed jobs yet: same placeholder.
        let fresh = ProgressSnapshot {
            wall: Duration::from_secs(3),
            completed: 0,
            in_flight: 2,
            ..snap
        };
        assert!(fresh.eta().is_none());
        assert!(fresh.render().contains("| eta --:--"), "{}", fresh.render());
        // A finished campaign renders `done`, not the placeholder.
        let done = ProgressSnapshot {
            completed: 8,
            in_flight: 0,
            ..fresh
        };
        assert!(done.render().contains("| done"), "{}", done.render());
    }

    #[test]
    fn utilization_is_clamped_and_scaled_by_workers() {
        let snap = ProgressSnapshot {
            wall: Duration::from_micros(1_000),
            total: 1,
            completed: 1,
            in_flight: 0,
            cache_hits: 0,
            cache_misses: 0,
            sim_cycles: 0,
            busy_us: 1_500,
            workers: 2,
        };
        assert!((snap.utilization() - 0.75).abs() < 1e-9);
        let over = ProgressSnapshot {
            busy_us: 10_000,
            ..snap
        };
        assert_eq!(over.utilization(), 1.0);
    }

    #[test]
    fn render_mentions_the_key_numbers() {
        let snap = ProgressSnapshot {
            wall: Duration::from_secs(1),
            total: 12,
            completed: 3,
            in_flight: 2,
            cache_hits: 4,
            cache_misses: 2,
            sim_cycles: 120_000_000,
            busy_us: 1_900_000,
            workers: 2,
        };
        let line = snap.render();
        assert!(line.contains("[  3/12]"), "{line}");
        assert!(line.contains("2 in flight"), "{line}");
        assert!(line.contains("cache 4/6 hit"), "{line}");
        assert!(line.contains("sim cyc/s"), "{line}");
        assert!(line.contains("eta"), "{line}");
    }

    #[test]
    fn reporter_stops_cleanly() {
        let p = Progress::new();
        p.set_total(1);
        let reporter = ProgressReporter::spawn(p.clone(), Duration::from_millis(5));
        p.job_started();
        p.job_finished(10, 10);
        std::thread::sleep(Duration::from_millis(20));
        reporter.finish();
    }
}
