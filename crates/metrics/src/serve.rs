//! Minimal std-only Prometheus scrape endpoint.
//!
//! One background thread, a non-blocking `TcpListener`, and a hand-written
//! HTTP/1.0 response — just enough for `curl`/Prometheus to scrape
//! `GET /metrics`. No external HTTP stack (the workspace is offline).

use crate::registry::Registry;
use crate::render_prometheus;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running scrape endpoint. Dropping it stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port 0 for an ephemeral
    /// port) and serves `GET /metrics` from `registry` until shutdown.
    pub fn bind(addr: &str, registry: Registry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("apt-metrics-serve".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One request per connection; errors on a single
                            // connection never take the endpoint down.
                            let _ = serve_one(stream, &registry);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn metrics server");
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head; we only need the request line.
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") | ("GET", "/") => ("200 OK", render_prometheus(registry)),
        ("GET", _) => ("404 Not Found", "not found\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Binds an ephemeral-port server, or `None` when the sandbox forbids
    /// sockets — the test then skips rather than fails.
    fn try_server(registry: Registry) -> Option<MetricsServer> {
        match MetricsServer::bind("127.0.0.1:0", registry) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("skipping serve test: cannot bind a socket here ({e})");
                None
            }
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn scrape_returns_current_metrics() {
        let registry = Registry::new();
        let jobs = registry.counter("apt_test_jobs_total", "Jobs", &[]);
        let Some(server) = try_server(registry) else {
            return;
        };
        jobs.add(3);
        let response = http_get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("apt_test_jobs_total 3"), "{response}");
        // Counters keep moving between scrapes.
        jobs.add(2);
        assert!(http_get(server.addr(), "/metrics").contains("apt_test_jobs_total 5"));
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404() {
        let Some(server) = try_server(Registry::new()) else {
            return;
        };
        let response = http_get(server.addr(), "/nope");
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
        server.shutdown();
    }
}
