//! The metrics registry: named counter/gauge/histogram families with
//! label support.
//!
//! Design constraints (mirroring `apt-trace`'s `TraceConfig::off`
//! discipline):
//!
//! * **disabled is free** — [`Registry::disabled`] hands out no-op
//!   handles whose update methods compile down to a single branch on an
//!   `Option` discriminant: no allocation, no atomics, no lock;
//! * **enabled is lock-free on the hot path** — a handle owns an
//!   `Arc<AtomicU64>` (or the histogram equivalent), so an update is one
//!   relaxed atomic RMW. The registry mutex is only taken at
//!   *registration* time (cold: once per series) and at *render* time;
//! * **deterministic rendering** — families and series live in
//!   `BTreeMap`s, so [`crate::prom::render_prometheus`] emits a stable
//!   order regardless of registration interleaving across threads.
//!
//! Naming convention (DESIGN.md §13): `apt_<crate>_<name>_<unit>`, e.g.
//! `apt_mem_level_hits_total`, `apt_bench_cell_wall_us`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Canonicalised label set: sorted by key, owned strings.
pub type LabelSet = Vec<(String, String)>;

fn canon_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

/// True iff `name` is a valid Prometheus metric/label identifier.
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Shared state behind an enabled histogram handle.
#[derive(Debug)]
pub struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// Per-bucket observation counts; one extra slot for `+Inf`.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> HistogramCore {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// `(upper_bound, cumulative_count)` pairs ending with the `+Inf`
    /// bucket, plus `(sum, count)`.
    pub fn snapshot(&self) -> (Vec<(Option<u64>, u64)>, u64, u64) {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), cum));
        }
        (
            out,
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// One cell: the storage behind a (family, label-set) series.
#[derive(Debug, Clone)]
pub(crate) enum Cell {
    Counter(Arc<AtomicU64>),
    /// f64 stored as its bit pattern.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// A named family: one kind, one help string, many labelled series.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) kind: MetricKind,
    pub(crate) help: String,
    pub(crate) series: BTreeMap<LabelSet, Cell>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Mutex<BTreeMap<String, Family>>,
}

/// The registry handle. `Clone` is cheap (one `Arc` bump); a disabled
/// registry clones to a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and the
    /// registry itself allocates nothing.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// True when metrics are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn cell(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        bounds: &[u64],
    ) -> Option<Cell> {
        let inner = self.inner.as_ref()?;
        debug_assert!(valid_name(name), "invalid metric name `{name}`");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label name in `{name}`"
        );
        let mut families = inner.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?} and {kind:?}",
            family.kind
        );
        let cell = family
            .series
            .entry(canon_labels(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
                MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
                MetricKind::Histogram => Cell::Histogram(Arc::new(HistogramCore::new(bounds))),
            });
        Some(cell.clone())
    }

    /// Looks up or creates the counter series `name{labels}`. Repeated
    /// calls with the same name and labels return handles to the same
    /// underlying cell.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, labels, MetricKind::Counter, &[]) {
            Some(Cell::Counter(c)) => Counter(Some(c)),
            _ => Counter(None),
        }
    }

    /// Looks up or creates the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, labels, MetricKind::Gauge, &[]) {
            Some(Cell::Gauge(g)) => Gauge(Some(g)),
            _ => Gauge(None),
        }
    }

    /// Looks up or creates the histogram series `name{labels}` with the
    /// given inclusive upper `bounds` (strictly increasing; a `+Inf`
    /// bucket is added automatically). Bounds are fixed at first
    /// registration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        match self.cell(name, help, labels, MetricKind::Histogram, bounds) {
            Some(Cell::Histogram(h)) => Histogram(Some(h)),
            _ => Histogram(None),
        }
    }

    /// Visits every family in name order, then every series in canonical
    /// label order, with a rendered value callback. The backbone of
    /// [`crate::prom::render_prometheus`].
    pub(crate) fn visit<F>(&self, mut f: F)
    where
        F: FnMut(&str, &Family, &LabelSet, &Cell),
    {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let families = inner.families.lock().unwrap();
        for (name, family) in families.iter() {
            for (labels, cell) in family.series.iter() {
                f(name, family, labels, cell);
            }
        }
    }

    /// The current value of the counter series, if it exists (test and
    /// snapshot helper; prefer keeping the handle on hot paths).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let families = inner.families.lock().unwrap();
        match families.get(name)?.series.get(&canon_labels(labels))? {
            Cell::Counter(c) => Some(c.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// The current value of the gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let families = inner.families.lock().unwrap();
        match families.get(name)?.series.get(&canon_labels(labels))? {
            Cell::Gauge(g) => Some(f64::from_bits(g.load(Ordering::Relaxed))),
            _ => None,
        }
    }
}

pub(crate) use cell_render::render_cell;

mod cell_render {
    use super::*;
    use crate::prom::{format_f64, render_series_line};

    /// Renders one series into exposition lines (histograms expand into
    /// `_bucket`/`_sum`/`_count`).
    pub(crate) fn render_cell(out: &mut String, name: &str, labels: &LabelSet, cell: &Cell) {
        match cell {
            Cell::Counter(c) => {
                render_series_line(
                    out,
                    name,
                    labels,
                    None,
                    &c.load(Ordering::Relaxed).to_string(),
                );
            }
            Cell::Gauge(g) => {
                let v = f64::from_bits(g.load(Ordering::Relaxed));
                render_series_line(out, name, labels, None, &format_f64(v));
            }
            Cell::Histogram(h) => {
                let (buckets, sum, count) = h.snapshot();
                for (bound, cum) in buckets {
                    let le = bound.map_or("+Inf".to_string(), |b| b.to_string());
                    render_series_line(
                        out,
                        &format!("{name}_bucket"),
                        labels,
                        Some(("le", &le)),
                        &cum.to_string(),
                    );
                }
                render_series_line(out, &format!("{name}_sum"), labels, None, &sum.to_string());
                render_series_line(
                    out,
                    &format!("{name}_count"),
                    labels,
                    None,
                    &count.to_string(),
                );
            }
        }
    }
}

/// A monotone counter handle. Disabled handles are a single branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op handle (what a disabled registry returns).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// True when updates go nowhere.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Adds one. Hot-path safe: one relaxed `fetch_add` when enabled, one
    /// branch when not.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding an `f64` (stored as bits in an `AtomicU64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (CAS loop; gauges are not hot-path metrics).
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0.0 for no-op handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Records one observation: one branch when disabled, three relaxed
    /// adds when enabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.observe(value);
        }
    }

    /// Total observations (0 for no-op handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of observations (0 for no-op handles).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }
}

/// Exponential-ish default buckets for microsecond wall times: 100 µs up
/// to ~100 s.
pub const WALL_US_BUCKETS: [u64; 13] = [
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn disabled_registry_hands_out_noops() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("apt_test_total", "help", &[]);
        let g = r.gauge("apt_test_gauge", "help", &[]);
        let h = r.histogram("apt_test_hist", "help", &[], &[1, 2]);
        assert!(c.is_noop() && g.is_noop() && h.is_noop());
        c.inc();
        g.set(7.0);
        h.observe(1);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        // A disabled registry registers nothing.
        assert_eq!(r.counter_value("apt_test_total", &[]), None);
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        let a = r.counter("apt_test_total", "help", &[("workload", "BFS")]);
        let b = r.counter("apt_test_total", "help", &[("workload", "IS")]);
        let a2 = r.counter("apt_test_total", "help", &[("workload", "BFS")]);
        a.add(3);
        a2.inc();
        b.inc();
        assert_eq!(
            r.counter_value("apt_test_total", &[("workload", "BFS")]),
            Some(4)
        );
        assert_eq!(
            r.counter_value("apt_test_total", &[("workload", "IS")]),
            Some(1)
        );
    }

    #[test]
    fn label_order_does_not_create_new_series() {
        let r = Registry::new();
        r.counter("apt_t_total", "h", &[("a", "1"), ("b", "2")])
            .inc();
        r.counter("apt_t_total", "h", &[("b", "2"), ("a", "1")])
            .inc();
        assert_eq!(
            r.counter_value("apt_t_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("apt_g", "h", &[]);
        g.set(2.5);
        g.add(1.0);
        assert_eq!(r.gauge_value("apt_g", &[]), Some(3.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("apt_h_us", "h", &[], &[10, 100]);
        for v in [5, 50, 500, 7] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 562);
        let mut seen = Vec::new();
        r.visit(|name, fam, _labels, _cell| seen.push((name.to_string(), fam.kind)));
        assert_eq!(seen, vec![("apt_h_us".to_string(), MetricKind::Histogram)]);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("apt_conflict", "h", &[]);
        r.gauge("apt_conflict", "h", &[]);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("apt_mem_l1_hits_total"));
        assert!(valid_name("_x:y9"));
        assert!(!valid_name("9bad"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
        assert!(!valid_name("uni—code"));
    }

    /// The acceptance-criteria microbench: with metrics off, an update is
    /// a single predictable branch, so a tight loop of disabled updates
    /// must cost no more than the same loop of *enabled* updates (which
    /// do strictly more work), within generous measurement noise.
    #[test]
    fn disabled_updates_are_not_slower_than_enabled() {
        const N: u64 = 2_000_000;
        let enabled = Registry::new().counter("apt_bench_total", "h", &[]);
        let disabled = Registry::disabled().counter("apt_bench_total", "h", &[]);

        // Warm both paths.
        for _ in 0..10_000 {
            enabled.inc();
            disabled.inc();
        }

        let t0 = Instant::now();
        for _ in 0..N {
            disabled.inc();
        }
        let t_off = t0.elapsed();

        let t1 = Instant::now();
        for _ in 0..N {
            enabled.inc();
        }
        let t_on = t1.elapsed();

        assert_eq!(enabled.get(), N + 10_000);
        assert_eq!(disabled.get(), 0);
        // 3x + 50ms absorbs scheduler noise; the structural claim (off
        // does strictly less work than on) keeps this robust.
        assert!(
            t_off <= t_on * 3 + std::time::Duration::from_millis(50),
            "disabled updates too slow: off {t_off:?} vs on {t_on:?}"
        );
    }
}
