//! Shared helpers for the apt-serve integration tests: synthetic
//! perf-script dumps with a controllable latency center, daemon setup
//! with temp directories, and the bind-or-skip idiom for sandboxes
//! without socket access.

use std::path::PathBuf;
use std::sync::Arc;

use apt_ingest::ProfileDb;
use apt_serve::{Daemon, FnReoptimizer, Reoptimizer, ServeConfig};

/// The loop-branch PC every synthetic dump samples.
pub const BRANCH_PC: u64 = 0x400100;
/// The delinquent-load PC every synthetic dump samples.
pub const LOAD_PC: u64 = 0x400200;

/// A parseable perf-script dump whose iteration latencies at
/// [`BRANCH_PC`] cluster tightly around `center` cycles: `snapshots`
/// LBR lines of 17 same-PC entries (16 latency observations each, so
/// one snapshot already clears `DriftConfig::min_observations`), each
/// followed by one DRAM-served PEBS sample at [`LOAD_PC`].
pub fn dump(center: u64, snapshots: usize) -> String {
    let mut out = String::from(
        "# apt-get perf script v1\n\
         # stats: instructions=1000000 cycles=2000000 branches=5000 taken_branches=4800\n",
    );
    let mut t: u64 = 50_000_000;
    for s in 0..snapshots {
        let entries: Vec<String> = (0..17)
            .map(|i| {
                // Entry i's delta spans to the next-older entry; the
                // oldest entry's delta is unused by the parser.
                let delta = center + ((s as u64 + i as u64) % 5);
                format!("0x{BRANCH_PC:x}/0x{:x}/P/-/-/{delta}", BRANCH_PC + 4)
            })
            .collect();
        out.push_str(&format!(
            "aptgetsim     0 [000]     {}.{:06}: cpu/branch-stack/: {}\n",
            t / 1_000_000,
            t % 1_000_000,
            entries.join(" ")
        ));
        t += 1_000_000;
        out.push_str(&format!(
            "aptgetsim     0 [000]     {}.{:06}: cpu/mem-loads,ldlat=30/P: 0x{LOAD_PC:x} weight: 150 lvl: RAM\n",
            t / 1_000_000,
            t % 1_000_000,
        ));
        t += 1_000_000;
    }
    out
}

/// A fresh scratch root for one test.
pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The test reoptimizer: hint bytes are a deterministic function of the
/// shard (tenant name + per-epoch labels and snapshot counts), so
/// byte-identical shards must produce byte-identical hints.
pub fn test_reoptimizer() -> Arc<dyn Reoptimizer> {
    Arc::new(FnReoptimizer(|tenant: &str, db: &ProfileDb| {
        let mut out = format!("# hints for {tenant}\n");
        for e in &db.epochs {
            out.push_str(&format!("{} {}\n", e.label, e.agg.lbr_snapshots));
        }
        Ok(out.into_bytes())
    }))
}

/// Starts a daemon on an ephemeral port under `root`, or `None` when
/// the sandbox forbids sockets (the caller then skips).
pub fn try_daemon(root: &std::path::Path, config: impl FnOnce(&mut ServeConfig)) -> Option<Daemon> {
    let mut cfg = ServeConfig::new("127.0.0.1:0", root.join("db"), root.join("hints"));
    cfg.registry = apt_metrics::Registry::new();
    config(&mut cfg);
    match Daemon::start(cfg, test_reoptimizer()) {
        Ok(daemon) => Some(daemon),
        Err(e) => {
            eprintln!("skipping serve test: cannot bind a socket here ({e})");
            None
        }
    }
}
