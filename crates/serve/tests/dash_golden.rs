//! Golden property of the observability pipeline: under a `FakeClock`,
//! the same scripted daemon lifecycle produces a byte-identical op-log,
//! byte-identical dashboard HTML, and a byte-identical Chrome trace —
//! run to run, directory to directory. Rendering is a pure function of
//! the log, so operators can diff dashboards across incidents.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use apt_ingest::AggregateProfile;
use apt_selfprof::FakeClock;
use apt_serve::oplog::{EpochOutcome, OpKind, ReoptOutcome, Stage};
use apt_serve::{
    chrome_trace, read_oplog_dir, render_dashboard, EfficacyLedger, Obs, OpLogConfig, OpRecord,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-dash-golden-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One scripted daemon lifecycle — two tenants, a drift-triggered swap,
/// an operator rollback — driven entirely by a fresh `FakeClock`.
fn scripted_run(dir: &Path) -> Vec<OpRecord> {
    let obs = Obs::new(
        Arc::new(FakeClock::new(13)),
        Some(OpLogConfig::new(dir.to_path_buf())),
    )
    .expect("open op-log");

    for (conn, (trace, tenant, label, tv, swap)) in [
        (0xA1u64, "BFS", "epoch-a-base", 0.02_f64, None),
        (0xB2, "BFS", "epoch-b-moved", 0.97, Some(1u64)),
        (0xC3, "PageRank", "epoch-a-base", 0.01, None),
    ]
    .into_iter()
    .enumerate()
    {
        let conn = conn as u64 + 1;
        obs.record(OpKind::ConnOpen { conn });
        for stage in [Stage::Parse, Stage::Queue] {
            let start = obs.now_us();
            obs.record_at(
                start,
                OpKind::Span {
                    trace,
                    tenant: tenant.to_string(),
                    stage,
                    start_us: start,
                    dur_us: 13,
                },
            );
        }
        obs.record(OpKind::Batch {
            jobs: 1,
            tenants: 1,
            queue_depth: 0,
        });
        for stage in [Stage::Commit, Stage::Drift] {
            let start = obs.now_us();
            obs.record_at(
                start,
                OpKind::Span {
                    trace,
                    tenant: tenant.to_string(),
                    stage,
                    start_us: start,
                    dur_us: 26,
                },
            );
        }
        obs.record(OpKind::Drift {
            trace,
            tenant: tenant.to_string(),
            label: label.to_string(),
            max_tv: tv,
            exceeded: swap.is_some(),
        });
        if let Some(generation) = swap {
            obs.record(OpKind::Swap {
                trace,
                tenant: tenant.to_string(),
                generation,
                bytes: 96,
                note: format!("drift max_tv={tv}"),
            });
            obs.record(OpKind::Reopt {
                trace,
                tenant: tenant.to_string(),
                outcome: ReoptOutcome::Swapped,
                generation,
                detail: format!("drift max_tv={tv}"),
            });
        }
        obs.record(OpKind::Epoch {
            trace,
            tenant: tenant.to_string(),
            label: label.to_string(),
            outcome: EpochOutcome::Accepted,
            detail: String::new(),
        });
        obs.record(OpKind::ConnClose { conn });
    }
    obs.record(OpKind::Rollback {
        tenant: "BFS".to_string(),
        from_gen: 1,
        to_gen: 0,
        note: "operator rollback".to_string(),
    });

    read_oplog_dir(dir).expect("validating read")
}

#[test]
fn dashboard_and_trace_are_byte_stable_under_a_fake_clock() {
    let dir_a = scratch("a");
    let dir_b = scratch("b");
    let rec_a = scripted_run(&dir_a);
    let rec_b = scripted_run(&dir_b);

    // Identical op-log files, bit for bit.
    assert_eq!(rec_a, rec_b);
    assert_eq!(
        fs::read(dir_a.join("oplog.jsonl")).expect("log a"),
        fs::read(dir_b.join("oplog.jsonl")).expect("log b"),
    );

    // A deterministic efficacy ledger joins the page the same way the
    // CLI's serve-dash builds it from `<db-dir>/<tenant>.aptel`.
    let ledger = || {
        let mut l = EfficacyLedger::default();
        let mut agg = AggregateProfile {
            instructions: 1_000,
            cycles: 2_000,
            ..AggregateProfile::default()
        };
        agg.pf_outcomes.insert(
            0x400300,
            apt_trace::PcOutcomes {
                issued: 32,
                timely: 30,
                late: 2,
                timely_slack_cycles: 3_000,
                late_head_start_cycles: 80,
                ..apt_trace::PcOutcomes::default()
            },
        );
        l.record_epoch(1, &agg);
        vec![("BFS".to_string(), l)]
    };

    // The dashboard is a pure function of the log: byte-identical HTML.
    let page_a = render_dashboard(&rec_a, None, &ledger());
    let page_b = render_dashboard(&rec_b, None, &ledger());
    assert_eq!(page_a, page_b);

    // It is a real self-contained page with the expected content.
    assert!(page_a.starts_with("<!DOCTYPE html>"));
    assert!(page_a.contains("BFS") && page_a.contains("PageRank"));
    assert!(page_a.contains("gen 1"), "swap generation marker missing");
    assert!(page_a.contains("rollback"), "rollback row missing");
    assert!(
        page_a.contains("Hint efficacy by generation") && page_a.contains("0.9375"),
        "efficacy generation-diff section missing"
    );
    assert!(page_a.contains("<svg"), "charts missing");
    assert!(!page_a.contains("http"), "external reference leaked");
    assert!(!page_a.contains("<script"), "scripts are banned");

    // Chrome trace export is byte-stable too, with one named thread row
    // per trace ID.
    let trace_a = chrome_trace(&rec_a);
    assert_eq!(trace_a, chrome_trace(&rec_b));
    for name in [
        "trace 00000000000000a1 (BFS)",
        "trace 00000000000000b2 (BFS)",
        "trace 00000000000000c3 (PageRank)",
    ] {
        assert!(trace_a.contains(name), "missing thread row: {name}");
    }
    assert!(
        trace_a.contains("\"ph\":\"C\""),
        "queue counter track missing"
    );

    // A metrics scrape joins deterministically as well.
    let scrape = "# TYPE apt_serve_uploads_total counter\napt_serve_uploads_total 3\n";
    assert_eq!(
        render_dashboard(&rec_a, Some(scrape), &ledger()),
        render_dashboard(&rec_b, Some(scrape), &ledger()),
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
