//! Property: an op-log survives the disk round trip byte-identically.
//! Any sequence of records — hostile tenant/label/note strings
//! included — written through `OpLogWriter` (across rotation
//! boundaries) reads back as exactly the same records, and
//! re-serializing those records reproduces the on-disk bytes. A torn
//! final line (a crashed writer) is tolerated on read and never
//! corrupts the records before it.

use std::fs;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

use apt_serve::oplog::{
    read_oplog_dir, EpochOutcome, OpKind, OpLogConfig, OpLogWriter, ReoptOutcome, Stage,
    ACTIVE_FILE, STAGES,
};
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-oplog-prop-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, non-ASCII, and the empty string.
fn nasty_string() -> impl Strategy<Value = String> {
    let palette = [
        'a', 'B', '0', '_', '-', '.', '/', ' ', '"', '\\', '\n', '\t', '\u{0}', 'é', '→', '🦀',
    ];
    prop::collection::vec(0usize..palette.len(), 0..12)
        .prop_map(move |idx| idx.into_iter().map(|i| palette[i]).collect())
}

/// Numeric fields ride the JSON number grammar and must stay < 2^53 to
/// round-trip exactly (see the format invariant in `oplog`); trace IDs
/// are hex strings and keep the full 64-bit range via `any::<u64>()`.
fn num() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

fn any_kind() -> impl Strategy<Value = OpKind> {
    let stage = (0usize..STAGES.len()).prop_map(|i| STAGES[i]);
    let epoch_outcome = prop_oneof![
        Just(EpochOutcome::Accepted),
        Just(EpochOutcome::Rejected),
        Just(EpochOutcome::Evicted),
    ];
    let reopt_outcome = prop_oneof![
        Just(ReoptOutcome::Swapped),
        Just(ReoptOutcome::Unchanged),
        Just(ReoptOutcome::Failed),
    ];
    prop_oneof![
        num().prop_map(|conn| OpKind::ConnOpen { conn }),
        num().prop_map(|conn| OpKind::ConnClose { conn }),
        (any::<u64>(), nasty_string(), stage, num(), num()).prop_map(
            |(trace, tenant, stage, start_us, dur_us)| OpKind::Span {
                trace,
                tenant,
                stage,
                start_us,
                dur_us,
            }
        ),
        (
            any::<u64>(),
            nasty_string(),
            nasty_string(),
            epoch_outcome,
            nasty_string()
        )
            .prop_map(|(trace, tenant, label, outcome, detail)| OpKind::Epoch {
                trace,
                tenant,
                label,
                outcome,
                detail,
            }),
        (num(), num(), num()).prop_map(|(jobs, tenants, queue_depth)| {
            OpKind::Batch {
                jobs,
                tenants,
                queue_depth,
            }
        }),
        (
            any::<u64>(),
            nasty_string(),
            nasty_string(),
            (0u64..=10_000).prop_map(|v| v as f64 / 10_000.0),
            any::<bool>(),
        )
            .prop_map(|(trace, tenant, label, max_tv, exceeded)| OpKind::Drift {
                trace,
                tenant,
                label,
                max_tv,
                exceeded,
            }),
        (
            any::<u64>(),
            nasty_string(),
            reopt_outcome,
            num(),
            nasty_string()
        )
            .prop_map(
                |(trace, tenant, outcome, generation, detail)| OpKind::Reopt {
                    trace,
                    tenant,
                    outcome,
                    generation,
                    detail,
                }
            ),
        (any::<u64>(), nasty_string(), num(), num(), nasty_string()).prop_map(
            |(trace, tenant, generation, bytes, note)| OpKind::Swap {
                trace,
                tenant,
                generation,
                bytes,
                note,
            }
        ),
        (nasty_string(), num(), num(), nasty_string()).prop_map(
            |(tenant, from_gen, to_gen, note)| OpKind::Rollback {
                tenant,
                from_gen,
                to_gen,
                note,
            }
        ),
        (any::<u64>(), nasty_string(), num(), num(), nasty_string()).prop_map(
            |(trace, tenant, generations, epochs, detail)| OpKind::Ledger {
                trace,
                tenant,
                generations,
                epochs,
                detail,
            }
        ),
    ]
}

/// Every op-log file in `dir`, rotation order, concatenated.
fn disk_bytes(dir: &std::path::Path) -> Vec<u8> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("read oplog dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    // Rotated files are zero-padded, so lexicographic order is rotation
    // order; the active file sorts after `oplog.00000.jsonl` by name.
    names.sort();
    let mut out = Vec::new();
    for n in names {
        out.extend_from_slice(&fs::read(dir.join(n)).expect("read oplog file"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// write → read → re-serialize is the identity on bytes, across
    /// rotation boundaries and writer reopens, with or without a torn
    /// tail from a crashed writer.
    #[test]
    fn oplog_round_trips_byte_identically(
        kinds in prop::collection::vec(any_kind(), 1..24),
        max_file_bytes in 64u64..512,
        reopen_at in 0usize..24,
        torn in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let dir = scratch("rt");
        let cfg = OpLogConfig {
            dir: dir.clone(),
            max_file_bytes, // tiny: forces rotation every few records
        };

        // Write, reopening the writer mid-stream to exercise seq resume.
        let mut written = Vec::new();
        let mut writer = OpLogWriter::open(cfg.clone()).expect("open writer");
        for (i, kind) in kinds.iter().enumerate() {
            if i == reopen_at.min(kinds.len() - 1) && i > 0 {
                drop(writer);
                writer = OpLogWriter::open(cfg.clone()).expect("reopen writer");
            }
            written.push(writer.append(i as u64 * 7, kind.clone()).expect("append"));
        }
        drop(writer);

        // Read back: same records, and their serialization is exactly
        // the bytes on disk.
        let read = read_oplog_dir(&dir).expect("validating read");
        prop_assert_eq!(&read, &written);
        let reserialized: String = read.iter().map(|r| r.to_line() + "\n").collect();
        prop_assert_eq!(reserialized.as_bytes(), &disk_bytes(&dir)[..]);

        // A crash can leave a torn (newline-less, possibly mid-UTF-8)
        // final line on the active file; the reader must drop it and
        // keep everything else.
        let mut tail: Vec<u8> = torn;
        tail.retain(|b| *b != b'\n');
        if !tail.is_empty() {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(ACTIVE_FILE))
                .expect("open active file");
            f.write_all(&tail).expect("tear the tail");
            drop(f);
            let tolerant = read_oplog_dir(&dir).expect("read with torn tail");
            prop_assert_eq!(&tolerant, &written);
        }

        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn stage_names_round_trip() {
    for s in STAGES {
        assert_eq!(Stage::from_name(s.name()), Some(s));
    }
}
