//! End-to-end daemon tests over localhost TCP: upload → batch commit →
//! drift detection → hint hot-swap, plus protocol-level error handling
//! on raw sockets. Every test skips (rather than fails) when the
//! sandbox forbids binding sockets.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;

use apt_metrics::Registry;
use apt_serve::{protocol, Client, ClientError, ShardStore};
use common::{dump, scratch, try_daemon};

#[test]
fn upload_drift_and_hot_swap_loop() {
    let root = scratch("loop");
    let registry = Registry::new();
    let reg = registry.clone();
    let Some(daemon) = try_daemon(&root, move |c| c.registry = reg) else {
        return;
    };

    let mut client = Client::connect(daemon.addr()).expect("connect");
    let calm = dump(100, 4);
    let reply = client
        .upload_reader("BFS", "epoch-1", calm.len() as u64, &mut calm.as_bytes())
        .expect("first upload");
    assert_eq!(reply.events, 8, "4 LBR lines + 4 PEBS lines");
    assert_eq!(reply.shard_epochs, 1);
    assert!(!reply.drifted, "one epoch has no baseline");
    assert_eq!(reply.generation, None);

    // A second connection uploads a drifted epoch: latency center moved
    // 100 → 400 cycles, so the deployed Eq.1 distance is stale.
    let mut client2 = Client::connect(daemon.addr()).expect("connect 2");
    let moved = dump(400, 4);
    let reply = client2
        .upload_reader("BFS", "epoch-2", moved.len() as u64, &mut moved.as_bytes())
        .expect("drifted upload");
    assert_eq!(reply.shard_epochs, 2);
    assert!(reply.drifted, "far-away center must exceed the threshold");
    assert!(reply.max_tv > 0.9, "max_tv {}", reply.max_tv);
    assert_eq!(reply.generation, Some(1), "first hot-swap");
    // The reply is written after the commit drained, so a sequential
    // uploader sees an idle committer queue (the backpressure signal).
    assert_eq!(reply.queue_depth, 0, "sequential uploads never backlog");

    // The hot-swapped hint file matches an offline re-derivation from
    // the shard the daemon wrote.
    let store = ShardStore::open(root.join("db")).unwrap();
    let db = store.load("BFS");
    assert_eq!(db.epochs.len(), 2);
    let hints = std::fs::read_to_string(root.join("hints/BFS/current.hints")).unwrap();
    assert_eq!(hints, "# hints for BFS\nepoch-1 4\nepoch-2 4\n");
    assert!(root.join("hints/BFS/gen-000001.hints").exists());
    assert!(root.join("hints/BFS/drift.txt").exists());
    let log = std::fs::read_to_string(root.join("hints/BFS/swap.log")).unwrap();
    assert!(log.contains("swap gen=000001"), "{log}");

    // Status is served on either connection and reflects the commit.
    let status = client.status("BFS").expect("status");
    assert!(
        status.starts_with("tenant BFS: 2 epoch(s), hints active\n"),
        "{status}"
    );
    assert!(status.contains("epoch-1: 4 lbr snapshot(s)"), "{status}");

    // The JSON status carries the same facts, machine-readable: it
    // parses with the in-repo parser and matches the offline render.
    let json_report = client.status_json("BFS").expect("status json");
    let parsed = apt_metrics::json::parse(&json_report).expect("status json parses");
    assert_eq!(parsed.str_field("tenant").unwrap(), "BFS");
    assert_eq!(parsed.u64_field("epochs").unwrap(), 2);
    assert_eq!(
        parsed
            .get("hints_active")
            .and_then(apt_metrics::json::Json::as_bool),
        Some(true)
    );
    assert_eq!(
        json_report,
        apt_serve::status_json(&store, &root.join("hints"), "BFS", None),
        "wire JSON must match the offline render of the same state"
    );

    // Per-tenant metrics moved on the shared registry.
    assert_eq!(
        registry.counter_value("apt_serve_epochs_ingested_total", &[("tenant", "BFS")]),
        Some(2)
    );
    assert_eq!(
        registry.counter_value("apt_serve_reoptimize_total", &[("tenant", "BFS")]),
        Some(1)
    );
    assert_eq!(
        registry.counter_value("apt_serve_drift_exceeded_total", &[("tenant", "BFS")]),
        Some(1)
    );
    assert_eq!(
        registry.counter_value("apt_serve_connections_total", &[]),
        Some(2)
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_labels_are_rejected_and_the_connection_survives() {
    let root = scratch("dup");
    let Some(daemon) = try_daemon(&root, |_| {}) else {
        return;
    };
    let mut client = Client::connect(daemon.addr()).expect("connect");
    let text = dump(100, 2);
    client
        .upload_reader("t", "e1", text.len() as u64, &mut text.as_bytes())
        .expect("first upload");
    let err = client
        .upload_reader("t", "e1", text.len() as u64, &mut text.as_bytes())
        .expect_err("duplicate label must be rejected");
    match err {
        ClientError::Server(m) => assert!(m.contains("duplicate"), "{m}"),
        other => panic!("expected a server rejection, got {other}"),
    }
    // Same connection, next upload: still frame-aligned.
    let reply = client
        .upload_reader("t", "e2", text.len() as u64, &mut text.as_bytes())
        .expect("upload after rejection");
    assert_eq!(reply.shard_epochs, 2);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn parse_errors_mid_body_keep_the_connection_usable() {
    let root = scratch("parse-err");
    let Some(daemon) = try_daemon(&root, |_| {}) else {
        return;
    };
    let mut client = Client::connect(daemon.addr()).expect("connect");

    // A truncated mem-loads record of a *known* kind is a hard parse
    // error; the daemon must drain the rest of the body and reply.
    let bad = "aptgetsim 0 [000] 1.000000: cpu/mem-loads,ldlat=30/P: 0x24 weight: 120\n\
               this line is never even reached by the parser\n";
    let err = client
        .upload_reader("t", "bad", bad.len() as u64, &mut bad.as_bytes())
        .expect_err("malformed dump must be rejected");
    match err {
        ClientError::Server(m) => {
            assert!(m.contains("parse failed"), "{m}");
            assert!(m.contains("line 1"), "error keeps location: {m}");
        }
        other => panic!("expected a server rejection, got {other}"),
    }

    let good = dump(100, 2);
    let reply = client
        .upload_reader("t", "e1", good.len() as u64, &mut good.as_bytes())
        .expect("upload after parse error");
    assert_eq!(reply.shard_epochs, 1);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn epoch_cap_garbage_collects_history() {
    let root = scratch("gc");
    let Some(daemon) = try_daemon(&root, |c| c.epoch_cap = 2) else {
        return;
    };
    let mut client = Client::connect(daemon.addr()).expect("connect");
    let text = dump(100, 2);
    for label in ["e1", "e2", "e3"] {
        client
            .upload_reader("t", label, text.len() as u64, &mut text.as_bytes())
            .expect("upload");
    }
    let status = client.status("t").expect("status");
    assert!(status.starts_with("tenant t: 2 epoch(s)"), "{status}");
    assert!(!status.contains("e1:"), "oldest label evicted: {status}");
    assert!(status.contains("e2:") && status.contains("e3:"), "{status}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_bodies_and_bad_tenants_are_refused() {
    let root = scratch("caps");
    let Some(daemon) = try_daemon(&root, |c| c.max_body = 1024) else {
        return;
    };

    // Client-side validation catches bad names before any bytes move.
    let mut client = Client::connect(daemon.addr()).expect("connect");
    assert!(matches!(
        client.upload_reader("../escape", "e", 1, &mut &b"x"[..]),
        Err(ClientError::Protocol(_))
    ));

    // A raw socket bypasses the client checks; the server must refuse
    // an oversized body announcement before reading any of it.
    let mut raw = TcpStream::connect(daemon.addr()).expect("raw connect");
    raw.write_all(protocol::HELLO).unwrap();
    protocol::write_upload_header(
        &mut raw,
        &protocol::UploadHeader {
            tenant: "t".into(),
            label: "big".into(),
            body_len: 10 << 20,
        },
    )
    .unwrap();
    match protocol::read_upload_reply(&mut raw).unwrap() {
        apt_serve::Reply::Err(m) => assert!(m.contains("exceeds"), "{m}"),
        other => panic!("expected an error reply, got {other:?}"),
    }

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_hello_is_rejected() {
    let root = scratch("hello");
    let Some(daemon) = try_daemon(&root, |_| {}) else {
        return;
    };
    let mut raw = TcpStream::connect(daemon.addr()).expect("raw connect");
    raw.write_all(b"GET / HT").unwrap();
    match protocol::read_upload_reply(&mut raw).unwrap() {
        apt_serve::Reply::Err(m) => assert!(m.contains("APTS1"), "{m}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    // The daemon closed the connection after the bad hello.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kind_1_and_kind_3_framings_interoperate_on_one_connection() {
    let root = scratch("interop");
    let oplog_dir = root.join("oplog");
    let oplog = oplog_dir.clone();
    let Some(daemon) = try_daemon(&root, move |c| {
        c.oplog = Some(apt_serve::OpLogConfig::new(oplog));
    }) else {
        return;
    };

    // One connection mixes all three upload framings: legacy kind-1,
    // kind-3 with a client trace, and kind-3 with trace 0 (daemon
    // assigns). Old clients keep working against a traced daemon.
    let mut client = Client::connect(daemon.addr()).expect("connect");
    let text = dump(100, 4);
    let legacy = client
        .upload_reader("BFS", "epoch-1", text.len() as u64, &mut text.as_bytes())
        .expect("kind-1 upload");
    assert_eq!(legacy.trace, 0, "kind-1 replies carry no trace");

    let text2 = dump(120, 4);
    let traced = client
        .upload_reader_traced(
            "BFS",
            "epoch-2",
            0xBEEF,
            text2.len() as u64,
            &mut text2.as_bytes(),
        )
        .expect("kind-3 upload");
    assert_eq!(traced.trace, 0xBEEF, "reply echoes the client's trace");

    let text3 = dump(140, 4);
    let assigned = client
        .upload_reader_traced(
            "BFS",
            "epoch-3",
            0,
            text3.len() as u64,
            &mut text3.as_bytes(),
        )
        .expect("kind-3 upload, daemon-assigned trace");
    assert_ne!(assigned.trace, 0, "trace 0 asks the daemon to assign one");

    daemon.shutdown();

    // Every upload — legacy included — has a full span chain on the
    // op-log under some nonzero trace ID.
    let records = apt_serve::read_oplog_dir(&oplog_dir).expect("op-log validates");
    let mut by_trace: std::collections::BTreeMap<u64, std::collections::BTreeSet<&str>> =
        std::collections::BTreeMap::new();
    for r in &records {
        if let apt_serve::OpKind::Span { trace, stage, .. } = &r.kind {
            by_trace.entry(*trace).or_default().insert(stage.name());
        }
    }
    assert_eq!(
        by_trace.len(),
        3,
        "three uploads, three traces: {by_trace:?}"
    );
    assert!(by_trace.contains_key(&0xBEEF));
    assert!(
        !by_trace.contains_key(&0),
        "daemon must assign nonzero traces"
    );
    for (trace, stages) in &by_trace {
        for stage in ["parse", "queue", "commit", "drift"] {
            assert!(
                stages.contains(stage),
                "trace {trace:#x} is missing its {stage} span: {stages:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
