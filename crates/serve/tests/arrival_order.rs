//! The merge-associativity property, end to end: N epoch uploads
//! distributed across M concurrent client connections in ANY order
//! produce a byte-identical shard file, identical status text,
//! byte-identical hot-swapped hints, and an identical drift report —
//! all compared against a sequential reference run.
//!
//! This is the property that makes out-of-order arrival sound: shards
//! keep epochs in canonical label order (aggregate merge is associative
//! and commutative, so content never depended on order; sorting fixes
//! the bytes), and every reoptimization decision is a function of the
//! post-commit shard, never of arrival history.

mod common;

use std::fs;

use apt_serve::{status_json, status_text, Client, EfficacyLedger, ShardStore};
use common::{dump, scratch, try_daemon};
use proptest::prelude::*;

/// Latency centers far enough apart that every pairwise TV distance is
/// ≈ 1: whichever epoch sorts last drifts hard against the rest, so the
/// reference and every permutation end with an active hint generation.
fn centers(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 60 + 120 * i).collect()
}

/// Runs one daemon to completion over the given upload schedule:
/// `assignment[i]` routes epoch `i` to connection `assignment[i] % 2`,
/// in `order`'s sequence. Returns the final artifacts.
fn run_schedule(tag: &str, order: &[usize], assignment: &[usize]) -> Option<Artifacts> {
    let root = scratch(tag);
    let daemon = try_daemon(&root, |_| {})?;
    let mut clients = [
        Client::connect(daemon.addr()).expect("connect a"),
        Client::connect(daemon.addr()).expect("connect b"),
    ];
    let centers = centers(order.len());
    for &i in order {
        let text = dump(centers[i], 3);
        clients[assignment[i] % 2]
            .upload_reader(
                "t",
                &format!("epoch-{i}"),
                text.len() as u64,
                &mut text.as_bytes(),
            )
            .expect("upload");
    }
    let status = clients[0].status("t").expect("status");
    let status_json_wire = clients[0].status_json("t").expect("status json");
    daemon.shutdown();

    let store = ShardStore::open(root.join("db")).unwrap();
    let artifacts = Artifacts {
        shard: fs::read(store.shard_path("t")).unwrap(),
        status,
        offline_status: status_text(&store, &root.join("hints"), "t"),
        status_json_wire,
        offline_status_json: status_json(&store, &root.join("hints"), "t", None),
        hints: fs::read(root.join("hints/t/current.hints")).unwrap(),
        drift: fs::read_to_string(root.join("hints/t/drift.txt")).unwrap(),
        ledger: fs::read(EfficacyLedger::path(store.dir(), "t")).unwrap_or_default(),
    };
    let _ = fs::remove_dir_all(&root);
    Some(artifacts)
}

#[derive(PartialEq)]
struct Artifacts {
    shard: Vec<u8>,
    status: String,
    offline_status: String,
    status_json_wire: String,
    offline_status_json: String,
    hints: Vec<u8>,
    drift: String,
    ledger: Vec<u8>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any permutation of N uploads over 2 connections converges to the
    /// sequential reference, byte for byte.
    #[test]
    fn any_interleaving_converges_to_the_sequential_reference(
        n in 3usize..=5,
        perm_seed in prop::collection::vec(0usize..100, 5),
        assignment in prop::collection::vec(0usize..2, 5),
    ) {
        // Reference: epochs uploaded in label order over one connection.
        let reference_order: Vec<usize> = (0..n).collect();
        let reference_assignment = vec![0usize; n];
        let Some(reference) =
            run_schedule("ref", &reference_order, &reference_assignment)
        else {
            return Ok(()); // No sockets in this sandbox: skip.
        };

        // Permutation via seeded selection-sort keys.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (perm_seed[i], i));

        let permuted = run_schedule("perm", &order, &assignment)
            .expect("second bind cannot fail if the first succeeded");

        prop_assert_eq!(
            &permuted.shard, &reference.shard,
            "shard bytes diverged for order {:?} assignment {:?}", order, assignment
        );
        prop_assert_eq!(&permuted.status, &reference.status);
        prop_assert_eq!(&permuted.offline_status, &reference.offline_status);
        prop_assert_eq!(
            &permuted.hints, &reference.hints,
            "hot-swapped hints diverged for order {:?}", order
        );
        prop_assert_eq!(&permuted.drift, &reference.drift);
        prop_assert_eq!(
            &permuted.ledger, &reference.ledger,
            "efficacy ledger bytes diverged for order {:?}", order
        );
        prop_assert_eq!(&permuted.status_json_wire, &reference.status_json_wire);
        // The wire status and the offline render agree (a quiescent
        // daemon has no backlog, so no warning line on the wire).
        prop_assert_eq!(&reference.status, &reference.offline_status);
        prop_assert_eq!(&reference.status_json_wire, &reference.offline_status_json);
    }
}
