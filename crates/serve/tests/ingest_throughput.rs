//! Ingest-throughput microbench for the reoptimization daemon: four
//! concurrent tenants stream epochs over real localhost sockets and the
//! sustained commit rate must clear a conservative floor. Prints a
//! `--stats`-style summary line (epochs/sec, MiB/sec, batching factor)
//! so CI logs track the trend.
//!
//! Ignored by default (it hammers sockets for a few seconds); the CI
//! daemon job runs it with `-- --ignored --nocapture`.
//!
//! The whole ingest phase runs under a `selfprof` session: the daemon's
//! `prof_scope!` instrumentation (`serve/upload`, `serve/commit_batch`,
//! `serve/shard/apply`, `serve/swap`) rolls up into a flamegraph SVG —
//! written to `$APT_SERVE_FLAME_OUT` (default `serve-ingest-flame.svg`)
//! — so a throughput regression arrives with its own profile attached.

mod common;

use std::time::Instant;

use apt_metrics::Registry;
use apt_serve::Client;
use common::{dump, scratch, try_daemon};

const TENANTS: usize = 4;
const EPOCHS_PER_TENANT: usize = 50;

#[test]
#[ignore = "saturates localhost sockets for seconds; the CI daemon job runs it with --ignored"]
fn concurrent_ingest_sustains_throughput() {
    let root = scratch("throughput");
    let registry = Registry::new();
    let reg = registry.clone();
    // A bounded shard (the deployment setting): commits stay O(cap),
    // not O(total-epochs-ever), so the bench measures steady state.
    let Some(daemon) = try_daemon(&root, move |c| {
        c.registry = reg;
        c.epoch_cap = 8;
    }) else {
        return;
    };
    let addr = daemon.addr();

    // Pre-render one dump per tenant; upload cost should be wire+parse+
    // commit, not test-side formatting.
    let text = dump(100, 8);
    let body_bytes = text.len() as u64;

    // Daemon handler/committer threads bind to this session lazily, so
    // their `prof_scope!` trees land in the profile collected here.
    let session = apt_selfprof::begin_monotonic();

    let t0 = Instant::now();
    let workers: Vec<_> = (0..TENANTS)
        .map(|t| {
            let text = text.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for e in 0..EPOCHS_PER_TENANT {
                    client
                        .upload_reader(
                            &format!("tenant-{t}"),
                            &format!("epoch-{e:04}"),
                            text.len() as u64,
                            &mut text.as_bytes(),
                        )
                        .expect("upload");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let wall = t0.elapsed();
    daemon.shutdown();

    // Ingest-path flamegraph: merged across daemon threads, rendered as
    // a self-contained SVG for the CI artifact stash.
    let profile = session.finish();
    let tree = profile.merged();
    if !tree.is_empty() {
        for (path, excl, incl, hits) in tree.hot_scopes().into_iter().take(5) {
            eprintln!("ingest hot scope: {path} ({excl} us excl, {incl} us incl, {hits} calls)");
        }
        let flame_path = std::env::var("APT_SERVE_FLAME_OUT")
            .unwrap_or_else(|_| "serve-ingest-flame.svg".to_string());
        let svg = apt_selfprof::flamegraph_svg(&tree, "serve ingest");
        match std::fs::write(&flame_path, &svg) {
            Ok(()) => eprintln!("ingest flamegraph written to {flame_path}"),
            Err(e) => eprintln!("could not write flamegraph {flame_path}: {e}"),
        }
        assert!(
            svg.contains("serve/upload"),
            "flamegraph must show the daemon's upload scope"
        );
    }

    let total_epochs = (TENANTS * EPOCHS_PER_TENANT) as u64;
    let epochs_per_sec = total_epochs as f64 / wall.as_secs_f64();
    let mib_per_sec = (total_epochs * body_bytes) as f64 / (1 << 20) as f64 / wall.as_secs_f64();
    let batches = registry
        .counter_value("apt_serve_batches_total", &[])
        .unwrap_or(0);
    let batching = total_epochs as f64 / batches.max(1) as f64;
    eprintln!(
        "serve ingest throughput: {total_epochs} epochs over {TENANTS} tenants in {:.2}s \
         = {epochs_per_sec:.0} epochs/s, {mib_per_sec:.1} MiB/s wire, \
         {batches} batches ({batching:.2} epochs/batch)",
        wall.as_secs_f64(),
    );

    // Every epoch landed.
    for t in 0..TENANTS {
        assert_eq!(
            registry.counter_value(
                "apt_serve_epochs_ingested_total",
                &[("tenant", &format!("tenant-{t}"))],
            ),
            Some(EPOCHS_PER_TENANT as u64)
        );
    }
    // Conservative floor: localhost ingest of small epochs should do
    // hundreds per second even on loaded CI; 25/s catches order-of-
    // magnitude regressions (an accidental fsync per epoch, a lost
    // batching path) without flaking.
    assert!(
        epochs_per_sec >= 25.0,
        "ingest throughput regressed: {epochs_per_sec:.1} epochs/s < 25"
    );
}
