//! The `APTS1` wire protocol: length-prefixed profile uploads.
//!
//! The daemon speaks a deliberately tiny binary protocol — the workspace
//! is offline, so there is no HTTP stack to lean on, and the payloads
//! (multi-megabyte `perf script` dumps) want streaming, not buffering.
//! Framing follows the repository's on-disk conventions: little-endian
//! `u64` everywhere, explicit lengths, hard caps on every length field so
//! a corrupt or hostile frame can never trigger a giant allocation.
//!
//! A connection is: an 8-byte hello (`APTS1\n\0\0`), then any number of
//! request/response exchanges. Requests:
//!
//! ```text
//! UPLOAD (kind 1):  u64 tenant_len, tenant, u64 label_len, label,
//!                   u64 body_len, body  (raw perf-script text, streamed)
//! STATUS (kind 2):  u64 tenant_len, tenant
//! UPLOAD (kind 3):  u64 trace_id, then the kind-1 header + body
//! ```
//!
//! Responses open with a status byte (`0` ok, `1` error). An error
//! carries one string. An UPLOAD ok carries the commit verdict (events
//! consumed, shard epoch count, drift verdict, hot-swap generation) and a
//! human-readable summary; a STATUS ok carries one string (the tenant
//! report). The body length is known up front, so the server can hand the
//! socket to the streaming parser ([`apt_ingest::parse_reader`]) without
//! ever materialising the dump.
//!
//! Kind 3 is the wire-compatible tracing extension: the client prepends
//! the `u64` trace ID it wants the upload's op-log spans recorded under
//! (`0` asks the server to assign one), and the ok response echoes the
//! effective trace ID back before the kind-1 reply fields. Old clients
//! keep sending kind 1 and never see a trace field; old servers reject
//! the unknown kind 3 with a normal error frame, so a new client can
//! fall back.

use std::io::{self, Read, Write};

/// Connection hello: protocol name + version, newline-terminated so a
/// stray HTTP client fails fast and visibly.
pub const HELLO: &[u8; 8] = b"APTS1\n\0\0";

/// Request kind: one profile epoch upload.
pub const KIND_UPLOAD: u8 = 1;
/// Request kind: tenant status report.
pub const KIND_STATUS: u8 = 2;
/// Request kind: profile epoch upload with a client-chosen trace ID.
pub const KIND_UPLOAD_TRACED: u8 = 3;
/// Request kind: tenant status report as a JSON document (same framing
/// as [`KIND_STATUS`], machine-readable payload).
pub const KIND_STATUS_JSON: u8 = 4;

/// Response status byte: success.
pub const STATUS_OK: u8 = 0;
/// Response status byte: failure (one string follows).
pub const STATUS_ERR: u8 = 1;

/// Wire encoding of "no hint generation was swapped in".
pub const NO_GENERATION: u64 = u64::MAX;

/// Longest accepted tenant name.
pub const MAX_TENANT: usize = 64;
/// Longest accepted epoch label.
pub const MAX_LABEL: usize = 256;
/// Longest accepted response message.
pub const MAX_MESSAGE: usize = 1 << 20;
/// Default upload body cap (64 MiB of perf-script text).
pub const DEFAULT_MAX_BODY: u64 = 64 << 20;

/// True iff `name` is usable as a tenant: non-empty, at most
/// [`MAX_TENANT`] bytes of `[A-Za-z0-9._-]`, and not dot-led (tenants
/// name shard files on disk).
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// True iff `label` is usable as an epoch label: non-empty, at most
/// [`MAX_LABEL`] bytes, no control characters (labels appear in logs and
/// status reports line-by-line).
pub fn valid_label(label: &str) -> bool {
    !label.is_empty() && label.len() <= MAX_LABEL && !label.chars().any(|c| c.is_control())
}

pub fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub fn write_str(w: &mut dyn Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string of at most `max` bytes. `what`
/// names the field in error messages.
pub fn read_str(r: &mut dyn Read, max: usize, what: &str) -> io::Result<String> {
    let len = read_u64(r)?;
    if len > max as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} length {len} exceeds the {max}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} is not valid UTF-8"),
        )
    })
}

/// An UPLOAD request's header (the body streams behind it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadHeader {
    pub tenant: String,
    pub label: String,
    /// Exact byte length of the perf-script body that follows.
    pub body_len: u64,
}

/// Writes the UPLOAD kind byte + header; the caller streams the body.
pub fn write_upload_header(w: &mut dyn Write, h: &UploadHeader) -> io::Result<()> {
    w.write_all(&[KIND_UPLOAD])?;
    write_str(w, &h.tenant)?;
    write_str(w, &h.label)?;
    write_u64(w, h.body_len)
}

/// Writes a traced UPLOAD (kind 3): the trace ID, then the kind-1
/// header fields. `trace` 0 asks the server to assign one.
pub fn write_upload_header_traced(
    w: &mut dyn Write,
    h: &UploadHeader,
    trace: u64,
) -> io::Result<()> {
    w.write_all(&[KIND_UPLOAD_TRACED])?;
    write_u64(w, trace)?;
    write_str(w, &h.tenant)?;
    write_str(w, &h.label)?;
    write_u64(w, h.body_len)
}

/// Reads the trace ID a kind-3 request carries ahead of its header.
pub fn read_trace_id(r: &mut dyn Read) -> io::Result<u64> {
    read_u64(r)
}

/// Reads an UPLOAD header (after the kind byte), validating the fields.
/// The body is *not* consumed; on error the caller must still drain
/// `body_len` bytes (when known) to keep the connection usable.
pub fn read_upload_header(r: &mut dyn Read, max_body: u64) -> io::Result<UploadHeader> {
    let tenant = read_str(r, MAX_TENANT, "tenant")?;
    let label = read_str(r, MAX_LABEL, "label")?;
    let body_len = read_u64(r)?;
    if !valid_tenant(&tenant) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid tenant `{tenant}` (want 1..={MAX_TENANT} bytes of [A-Za-z0-9._-], not dot-led)"),
        ));
    }
    if !valid_label(&label) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid label `{label}`"),
        ));
    }
    if body_len > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("body length {body_len} exceeds the {max_body}-byte cap"),
        ));
    }
    Ok(UploadHeader {
        tenant,
        label,
        body_len,
    })
}

/// The commit verdict an accepted upload returns.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadReply {
    /// Event lines the parser consumed from this upload.
    pub events: u64,
    /// Epochs in the tenant's shard after the commit.
    pub shard_epochs: u64,
    /// True when the shard's newest epoch drifts past the daemon's
    /// reoptimization threshold.
    pub drifted: bool,
    /// Largest per-branch TV distance of the post-commit drift report
    /// (0.0 with fewer than two epochs).
    pub max_tv: f64,
    /// Hint generation hot-swapped in by this commit, if any.
    pub generation: Option<u64>,
    /// Committer queue depth observed when the reply was written — the
    /// backpressure signal a client watches to slow its upload cadence.
    pub queue_depth: u64,
    /// Human-readable commit summary.
    pub message: String,
    /// Trace ID the daemon recorded this upload's op-log spans under.
    /// Only on the wire for kind-3 exchanges; a kind-1 reply reads as 0.
    pub trace: u64,
}

fn write_upload_reply_fields(w: &mut dyn Write, reply: &UploadReply) -> io::Result<()> {
    write_u64(w, reply.events)?;
    write_u64(w, reply.shard_epochs)?;
    w.write_all(&[reply.drifted as u8])?;
    write_u64(w, reply.max_tv.to_bits())?;
    write_u64(w, reply.generation.unwrap_or(NO_GENERATION))?;
    write_u64(w, reply.queue_depth)?;
    write_str(w, &reply.message)
}

/// Writes an UPLOAD success response (kind-1 framing, no trace field).
pub fn write_upload_reply(w: &mut dyn Write, reply: &UploadReply) -> io::Result<()> {
    w.write_all(&[STATUS_OK])?;
    write_upload_reply_fields(w, reply)
}

/// Writes a traced UPLOAD success response (kind-3 framing): the
/// effective trace ID is echoed ahead of the kind-1 fields.
pub fn write_upload_reply_traced(w: &mut dyn Write, reply: &UploadReply) -> io::Result<()> {
    w.write_all(&[STATUS_OK])?;
    write_u64(w, reply.trace)?;
    write_upload_reply_fields(w, reply)
}

/// Writes an error response (any request kind).
pub fn write_error(w: &mut dyn Write, message: &str) -> io::Result<()> {
    w.write_all(&[STATUS_ERR])?;
    write_str(w, message)
}

/// Writes a STATUS success response.
pub fn write_status_reply(w: &mut dyn Write, report: &str) -> io::Result<()> {
    w.write_all(&[STATUS_OK])?;
    write_str(w, report)
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Upload(UploadReply),
    Status(String),
    Err(String),
}

fn read_status_byte(r: &mut dyn Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_upload_reply_fields(r: &mut dyn Read, trace: u64) -> io::Result<UploadReply> {
    let events = read_u64(r)?;
    let shard_epochs = read_u64(r)?;
    let drifted = read_status_byte(r)? != 0;
    let max_tv = f64::from_bits(read_u64(r)?);
    let generation = match read_u64(r)? {
        NO_GENERATION => None,
        g => Some(g),
    };
    let queue_depth = read_u64(r)?;
    let message = read_str(r, MAX_MESSAGE, "message")?;
    Ok(UploadReply {
        events,
        shard_epochs,
        drifted,
        max_tv,
        generation,
        queue_depth,
        message,
        trace,
    })
}

/// Reads the response to an UPLOAD request (kind-1 framing; the reply's
/// `trace` field reads as 0).
pub fn read_upload_reply(r: &mut dyn Read) -> io::Result<Reply> {
    match read_status_byte(r)? {
        STATUS_OK => Ok(Reply::Upload(read_upload_reply_fields(r, 0)?)),
        STATUS_ERR => Ok(Reply::Err(read_str(r, MAX_MESSAGE, "error message")?)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status byte {other}"),
        )),
    }
}

/// Reads the response to a traced (kind-3) UPLOAD request.
pub fn read_upload_reply_traced(r: &mut dyn Read) -> io::Result<Reply> {
    match read_status_byte(r)? {
        STATUS_OK => {
            let trace = read_u64(r)?;
            Ok(Reply::Upload(read_upload_reply_fields(r, trace)?))
        }
        STATUS_ERR => Ok(Reply::Err(read_str(r, MAX_MESSAGE, "error message")?)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status byte {other}"),
        )),
    }
}

/// Reads the response to a STATUS request.
pub fn read_status_reply(r: &mut dyn Read) -> io::Result<Reply> {
    match read_status_byte(r)? {
        STATUS_OK => Ok(Reply::Status(read_str(r, MAX_MESSAGE, "status report")?)),
        STATUS_ERR => Ok(Reply::Err(read_str(r, MAX_MESSAGE, "error message")?)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status byte {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_and_label_validation() {
        assert!(valid_tenant("BFS"));
        assert!(valid_tenant("tenant-7.shard_2"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant(".hidden"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant("päth"));
        assert!(!valid_tenant(&"x".repeat(MAX_TENANT + 1)));
        assert!(valid_label("run 42 (später)"));
        assert!(!valid_label(""));
        assert!(!valid_label("two\nlines"));
    }

    #[test]
    fn upload_header_round_trips() {
        let h = UploadHeader {
            tenant: "BFS".into(),
            label: "epoch-1".into(),
            body_len: 12345,
        };
        let mut buf = Vec::new();
        write_upload_header(&mut buf, &h).unwrap();
        let mut r = &buf[..];
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind).unwrap();
        assert_eq!(kind[0], KIND_UPLOAD);
        assert_eq!(read_upload_header(&mut r, DEFAULT_MAX_BODY).unwrap(), h);
        assert!(r.is_empty());
    }

    #[test]
    fn upload_header_rejects_bad_fields() {
        let write = |tenant: &str, label: &str, body: u64| {
            let mut buf = Vec::new();
            write_str(&mut buf, tenant).unwrap();
            write_str(&mut buf, label).unwrap();
            write_u64(&mut buf, body).unwrap();
            buf
        };
        let cases = [
            write("a/b", "ok", 10),
            write("BFS", "bad\nlabel", 10),
            write("BFS", "ok", 1 << 40),
        ];
        for bytes in &cases {
            let err = read_upload_header(&mut &bytes[..], DEFAULT_MAX_BODY).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        }
        // Oversized length prefixes fail before allocating.
        let mut huge = Vec::new();
        write_u64(&mut huge, u64::MAX).unwrap();
        let err = read_upload_header(&mut &huge[..], DEFAULT_MAX_BODY).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn replies_round_trip() {
        let reply = UploadReply {
            events: 77,
            shard_epochs: 3,
            drifted: true,
            max_tv: 0.875,
            generation: Some(4),
            queue_depth: 5,
            message: "drift 0.875, swapped generation 4".into(),
            trace: 0,
        };
        let mut buf = Vec::new();
        write_upload_reply(&mut buf, &reply).unwrap();
        assert_eq!(
            read_upload_reply(&mut &buf[..]).unwrap(),
            Reply::Upload(reply)
        );

        let mut buf = Vec::new();
        write_upload_reply(
            &mut buf,
            &UploadReply {
                events: 0,
                shard_epochs: 1,
                drifted: false,
                max_tv: 0.0,
                generation: None,
                queue_depth: 0,
                message: String::new(),
                trace: 0,
            },
        )
        .unwrap();
        match read_upload_reply(&mut &buf[..]).unwrap() {
            Reply::Upload(r) => assert_eq!(r.generation, None),
            other => panic!("{other:?}"),
        }

        let mut buf = Vec::new();
        write_error(&mut buf, "duplicate epoch label `run-1`").unwrap();
        assert_eq!(
            read_upload_reply(&mut &buf[..]).unwrap(),
            Reply::Err("duplicate epoch label `run-1`".into())
        );

        let mut buf = Vec::new();
        write_status_reply(&mut buf, "tenant BFS: 2 epoch(s)").unwrap();
        assert_eq!(
            read_status_reply(&mut &buf[..]).unwrap(),
            Reply::Status("tenant BFS: 2 epoch(s)".into())
        );
    }

    #[test]
    fn traced_frames_round_trip_and_interop_with_kind_1() {
        // Header: kind 3 carries the trace ID ahead of the kind-1 fields.
        let h = UploadHeader {
            tenant: "BFS".into(),
            label: "epoch-1".into(),
            body_len: 99,
        };
        let mut buf = Vec::new();
        write_upload_header_traced(&mut buf, &h, 0xDEAD_BEEF_0000_0001).unwrap();
        let mut r = &buf[..];
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind).unwrap();
        assert_eq!(kind[0], KIND_UPLOAD_TRACED);
        assert_eq!(read_trace_id(&mut r).unwrap(), 0xDEAD_BEEF_0000_0001);
        assert_eq!(read_upload_header(&mut r, DEFAULT_MAX_BODY).unwrap(), h);
        assert!(r.is_empty());

        // Reply: the traced framing echoes the trace ID, and the same
        // reply written kind-1 style reads back with trace 0 — the
        // compatibility contract for old clients.
        let reply = UploadReply {
            events: 8,
            shard_epochs: 2,
            drifted: true,
            max_tv: 0.5,
            generation: Some(1),
            queue_depth: 2,
            message: "committed".into(),
            trace: 0xDEAD_BEEF_0000_0001,
        };
        let mut buf = Vec::new();
        write_upload_reply_traced(&mut buf, &reply).unwrap();
        assert_eq!(
            read_upload_reply_traced(&mut &buf[..]).unwrap(),
            Reply::Upload(reply.clone())
        );
        let mut buf = Vec::new();
        write_upload_reply(&mut buf, &reply).unwrap();
        match read_upload_reply(&mut &buf[..]).unwrap() {
            Reply::Upload(r) => {
                assert_eq!(r.trace, 0, "kind-1 framing never carries a trace");
                assert_eq!(r.message, reply.message);
            }
            other => panic!("{other:?}"),
        }

        // Error frames are shared between the kinds.
        let mut buf = Vec::new();
        write_error(&mut buf, "no").unwrap();
        assert_eq!(
            read_upload_reply_traced(&mut &buf[..]).unwrap(),
            Reply::Err("no".into())
        );
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let reply = UploadReply {
            events: 1,
            shard_epochs: 1,
            drifted: false,
            max_tv: 0.5,
            generation: Some(1),
            queue_depth: 1,
            message: "ok".into(),
            trace: 7,
        };
        let mut buf = Vec::new();
        write_upload_reply(&mut buf, &reply).unwrap();
        for cut in [0, 1, 9, buf.len() - 1] {
            assert!(read_upload_reply(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
        let mut buf = Vec::new();
        write_upload_reply_traced(&mut buf, &reply).unwrap();
        for cut in [0, 1, 8, buf.len() - 1] {
            assert!(
                read_upload_reply_traced(&mut &buf[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }
}
