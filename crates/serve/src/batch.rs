//! The single-writer committer: batches concurrent uploads into one
//! shard write per tenant, then runs drift detection and (when the
//! shard has moved) hint reoptimization on the post-commit state.
//!
//! Connection handlers parse uploads concurrently but never touch disk;
//! they hand finished [`Job`]s to one committer thread over an mpsc
//! channel. The committer drains whatever has queued up, groups it by
//! tenant, and commits each tenant's epochs with a *single* shard
//! load+save — under concurrent upload bursts the write amplification
//! drops from one save per upload to one save per tenant per batch.
//! Single-writer also makes [`ShardStore::open`]'s orphan sweep safe:
//! no other thread ever has a temp file in flight.
//!
//! Every decision the committer makes is a function of the *post-commit
//! shard*, never of arrival order:
//!
//! * drift compares the shard's canonically-newest epoch (highest
//!   label) against the merge of the rest;
//! * hints are re-derived from the whole shard when drift crosses the
//!   reoptimize threshold, and *refreshed* (swapped only if the bytes
//!   changed) on later commits once a generation exists — so once any
//!   swap has happened, `current.hints` always equals the offline
//!   [`Reoptimizer`] output for the shard as it stands.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use apt_ingest::{detect_drift, AggregateProfile, DriftConfig, Epoch, ProfileDb};

use crate::efficacy::EfficacyLedger;
use crate::metrics::{QueueDepth, ServeMetrics};
use crate::oplog::{EpochOutcome, Obs, OpKind, ReoptOutcome, Stage};
use crate::shard::ShardStore;
use crate::swap::HintSwapper;

/// Derives hint-file bytes for a tenant from its shard. The daemon is
/// workload-agnostic; the embedder supplies the actual optimize path
/// (the CLI wires `optimize_from_db` + `serialize_hints` here).
pub trait Reoptimizer: Send + Sync {
    /// Returns the serialized hint file, or a reason hints cannot be
    /// derived (the current generation then stays in place).
    fn reoptimize(&self, tenant: &str, db: &ProfileDb) -> Result<Vec<u8>, String>;
}

/// Adapts a closure into a [`Reoptimizer`].
pub struct FnReoptimizer<F>(pub F);

impl<F> Reoptimizer for FnReoptimizer<F>
where
    F: Fn(&str, &ProfileDb) -> Result<Vec<u8>, String> + Send + Sync,
{
    fn reoptimize(&self, tenant: &str, db: &ProfileDb) -> Result<Vec<u8>, String> {
        (self.0)(tenant, db)
    }
}

/// One parsed upload, ready to commit.
pub struct Job {
    pub tenant: String,
    pub label: String,
    pub agg: AggregateProfile,
    /// Profile events parsed from the body (echoed in the reply).
    pub events: u64,
    /// When the frame arrived (ingest-latency histogram).
    pub received: Instant,
    /// Trace ID the upload's op-log spans are recorded under.
    pub trace: u64,
    /// Obs-clock reading when the job entered the committer queue (the
    /// queue span runs from here to the batch drain).
    pub enqueued_us: u64,
    /// Where the per-job verdict goes.
    pub reply: Sender<Result<Accepted, String>>,
}

/// A committed upload's verdict.
#[derive(Debug, Clone)]
pub struct Accepted {
    /// Epochs in the tenant's shard after the commit.
    pub shard_epochs: u64,
    /// Whether the post-commit drift crossed the reoptimize threshold.
    pub drifted: bool,
    /// Largest per-branch TV distance of the post-commit drift report.
    pub max_tv: f64,
    /// Active hint generation after the commit, if any swap has
    /// happened for this tenant.
    pub generation: Option<u64>,
}

/// The committer's configuration and long-lived state.
pub struct Committer {
    pub store: ShardStore,
    pub hints_dir: PathBuf,
    pub drift: DriftConfig,
    /// `DriftReport::exceeds` threshold that triggers reoptimization.
    pub reopt_threshold: f64,
    /// Epochs kept per shard (0 = unlimited).
    pub epoch_cap: usize,
    pub metrics: ServeMetrics,
    pub reopt: Arc<dyn Reoptimizer>,
    /// Op-log + clock (share the acceptor's so spans line up).
    pub obs: Arc<Obs>,
    /// Queue accounting shared with the enqueuing handlers.
    pub queue: QueueDepth,
    /// Outcome epochs the active generation needs on the efficacy
    /// ledger before the regression policy may judge it (0 disables
    /// the policy).
    pub efficacy_window: u64,
    /// How far the active generation's timely share may trail an
    /// earlier evidenced generation before it is rolled back.
    pub efficacy_threshold: f64,
}

impl Committer {
    /// Drains the job channel until every sender hangs up: one blocking
    /// `recv`, then everything already queued, forms one batch.
    pub fn run(&self, jobs: &Receiver<Job>) {
        while let Ok(first) = jobs.recv() {
            let mut batch = vec![first];
            while let Ok(job) = jobs.try_recv() {
                batch.push(job);
            }
            self.commit_batch(batch);
        }
    }

    /// Commits one batch: group by tenant, one shard write per tenant,
    /// then drift + reoptimization on each post-commit shard.
    pub fn commit_batch(&self, batch: Vec<Job>) {
        apt_selfprof::prof_scope!("serve/commit_batch");
        self.metrics.batches.inc();
        let jobs_n = batch.len() as u64;
        let drained_us = self.obs.now_us();
        self.queue.exit_n(jobs_n);
        self.queue.note_batch(jobs_n);
        let queue_hist = self.metrics.stage_latency("queue");
        let mut by_tenant: BTreeMap<String, Vec<Job>> = BTreeMap::new();
        for job in batch {
            // The queue span closes here for every job in the batch: it
            // waited from its enqueue to this drain.
            let dur_us = drained_us.saturating_sub(job.enqueued_us);
            self.obs.record_at(
                job.enqueued_us,
                OpKind::Span {
                    trace: job.trace,
                    tenant: job.tenant.clone(),
                    stage: Stage::Queue,
                    start_us: job.enqueued_us,
                    dur_us,
                },
            );
            queue_hist.observe(dur_us);
            by_tenant.entry(job.tenant.clone()).or_default().push(job);
        }
        self.obs.record(OpKind::Batch {
            jobs: jobs_n,
            tenants: by_tenant.len() as u64,
            queue_depth: self.queue.depth(),
        });
        for (tenant, jobs) in by_tenant {
            self.commit_tenant(&tenant, jobs);
        }
    }

    fn commit_tenant(&self, tenant: &str, jobs: Vec<Job>) {
        let epochs: Vec<Epoch> = jobs
            .iter()
            .map(|j| Epoch {
                label: j.label.clone(),
                agg: j.agg.clone(),
            })
            .collect();
        let commit_start = self.obs.now_us();
        let outcome = match self.store.apply(tenant, epochs, self.epoch_cap) {
            Ok(o) => o,
            Err(e) => {
                self.metrics.errors.add(jobs.len() as u64);
                let msg = format!("shard write failed: {e}");
                for job in jobs {
                    let _ = job.reply.send(Err(msg.clone()));
                    self.observe_latency(&job);
                }
                return;
            }
        };
        // One shard write served every job in the group, so they all get
        // the same commit span.
        let commit_dur = self.obs.now_us().saturating_sub(commit_start);
        for job in &jobs {
            self.obs.record_at(
                commit_start,
                OpKind::Span {
                    trace: job.trace,
                    tenant: tenant.to_string(),
                    stage: Stage::Commit,
                    start_us: commit_start,
                    dur_us: commit_dur,
                },
            );
        }
        self.metrics.stage_latency("commit").observe(commit_dur);
        self.metrics
            .epochs_ingested(tenant)
            .add(outcome.accepted.len() as u64);
        self.metrics
            .epochs_rejected(tenant)
            .add(outcome.rejected.len() as u64);
        self.metrics
            .epochs_evicted(tenant)
            .add(outcome.evicted.len() as u64);
        for label in &outcome.evicted {
            // Evictions displace *older* epochs, not anything uploaded in
            // this batch, so they carry no trace.
            self.obs.record(OpKind::Epoch {
                trace: 0,
                tenant: tenant.to_string(),
                label: label.clone(),
                outcome: EpochOutcome::Evicted,
                detail: "epoch cap".to_string(),
            });
        }

        let traces: Vec<u64> = jobs.iter().map(|j| j.trace).collect();
        let verdict = self.reoptimize_if_moved(tenant, &outcome.db, &traces);
        // Outcome evidence lands after reoptimization so the regression
        // policy judges the generation that is active *now*; a rollback
        // updates the generation the replies report.
        let primary = traces.first().copied().unwrap_or(0);
        let generation = self
            .commit_ledger(tenant, &jobs, &outcome.accepted, primary)
            .or(verdict.generation);

        let mut unclaimed: HashSet<&str> = outcome.accepted.iter().map(|s| s.as_str()).collect();
        for job in jobs {
            let result = if unclaimed.remove(job.label.as_str()) {
                self.obs.record(OpKind::Epoch {
                    trace: job.trace,
                    tenant: tenant.to_string(),
                    label: job.label.clone(),
                    outcome: EpochOutcome::Accepted,
                    detail: String::new(),
                });
                Ok(Accepted {
                    shard_epochs: outcome.db.epochs.len() as u64,
                    drifted: verdict.drifted,
                    max_tv: verdict.max_tv,
                    generation,
                })
            } else {
                self.metrics.errors.inc();
                let reason = outcome
                    .rejected
                    .iter()
                    .find(|(l, _)| *l == job.label)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| "epoch not committed".to_string());
                self.obs.record(OpKind::Epoch {
                    trace: job.trace,
                    tenant: tenant.to_string(),
                    label: job.label.clone(),
                    outcome: EpochOutcome::Rejected,
                    detail: reason.clone(),
                });
                Err(reason)
            };
            let _ = job.reply.send(result);
            self.observe_latency(&job);
        }
    }

    fn observe_latency(&self, job: &Job) {
        self.metrics
            .ingest_latency_us
            .observe(job.received.elapsed().as_micros() as u64);
    }

    /// Lands the batch's accepted epochs on the tenant's efficacy
    /// ledger (every epoch counts — untagged ones under the baseline
    /// bucket), then runs the regression policy against the active
    /// generation. Returns the generation now active when the policy
    /// rolled back, `None` otherwise.
    ///
    /// Ledger content is a pure sum over the accepted-epoch set (plus
    /// monotone `rolled_back` flags), so like the shard it is a
    /// function of *what* committed, never of arrival order.
    fn commit_ledger(
        &self,
        tenant: &str,
        jobs: &[Job],
        accepted: &[String],
        primary: u64,
    ) -> Option<u64> {
        // Same first-wins claim discipline the reply loop uses, so an
        // in-batch duplicate label contributes exactly one epoch.
        let mut claim: HashSet<&str> = accepted.iter().map(|s| s.as_str()).collect();
        let path = EfficacyLedger::path(self.store.dir(), tenant);
        let mut ledger = EfficacyLedger::load_or_empty(&path);
        let mut landed = false;
        for job in jobs {
            if claim.remove(job.label.as_str()) {
                ledger.record_epoch(job.agg.gen.ledger_key(), &job.agg);
                landed = true;
            }
        }
        if !landed {
            return None;
        }

        let mut rolled_to = None;
        if let Ok(swapper) = HintSwapper::open(self.hints_dir.join(tenant)) {
            if let Some(active) = swapper.current_generation() {
                if let Some(prior) =
                    ledger.regression(active, self.efficacy_window, self.efficacy_threshold)
                {
                    let cur = ledger.generations[&active].timely_share().unwrap_or(0.0);
                    let best = ledger.generations[&prior].timely_share().unwrap_or(0.0);
                    let note = format!(
                        "auto: gen {active} timely {cur:.4} trails gen {prior} timely \
                         {best:.4} beyond {:.2}",
                        self.efficacy_threshold
                    );
                    match swapper.rollback(&note) {
                        Ok(Some(to_gen)) => {
                            // The flag persists, so the verdict (and the
                            // final ledger bytes) cannot depend on how
                            // later evidence happens to arrive.
                            ledger
                                .generations
                                .get_mut(&active)
                                .expect("judged")
                                .rolled_back = true;
                            self.metrics.auto_rollback(tenant).inc();
                            self.obs.record(OpKind::Rollback {
                                tenant: tenant.to_string(),
                                from_gen: active,
                                to_gen,
                                note,
                            });
                            rolled_to = Some(to_gen);
                        }
                        Ok(None) => {}
                        Err(e) => {
                            eprintln!("serve: auto-rollback for `{tenant}` failed: {e}");
                            self.metrics.errors.inc();
                        }
                    }
                }
            }
        }

        if let Err(e) = ledger.save(&path) {
            eprintln!("serve: efficacy ledger for `{tenant}` failed: {e}");
            self.metrics.errors.inc();
            return rolled_to;
        }
        for (gen, g) in &ledger.generations {
            self.metrics.gen_epochs(tenant, *gen).set(g.epochs as f64);
            if let Some(share) = g.timely_share() {
                self.metrics.gen_timely_share(tenant, *gen).set(share);
            }
        }
        let detail = ledger
            .generations
            .iter()
            .rev()
            .find_map(|(g, e)| e.timely_share().map(|s| format!("gen {g} timely {s:.4}")))
            .unwrap_or_default();
        self.obs.record(OpKind::Ledger {
            trace: primary,
            tenant: tenant.to_string(),
            generations: ledger.generations.len() as u64,
            epochs: ledger.total_epochs(),
            detail,
        });
        rolled_to
    }

    /// Post-commit drift detection + hint reoptimization for one shard.
    /// `traces` are the trace IDs of the jobs whose commit triggered
    /// this evaluation: each gets a drift span (the evaluation serves
    /// them all); singular decision records (drift score, reopt verdict,
    /// swap) attribute to the first.
    fn reoptimize_if_moved(&self, tenant: &str, db: &ProfileDb, traces: &[u64]) -> Verdict {
        let primary = traces.first().copied().unwrap_or(0);
        let mut verdict = Verdict::default();
        let swapper = match HintSwapper::open(self.hints_dir.join(tenant)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: hint dir for `{tenant}` unavailable: {e}");
                self.metrics.errors.inc();
                return verdict;
            }
        };
        verdict.generation = swapper.current_generation();

        let drift_start = self.obs.now_us();
        let mut report_text = None;
        let mut drift_label = String::new();
        if db.epochs.len() >= 2 {
            let newest = db.epochs.last().expect("non-empty");
            let report = detect_drift(
                &db.baseline(),
                &newest.agg,
                &newest.label,
                db.epochs.len() - 1,
                &self.drift,
            );
            verdict.drifted = report.exceeds(self.reopt_threshold);
            verdict.max_tv = report.max_tv_distance();
            drift_label = newest.label.clone();
            report_text = Some(report.render());
        }
        // Drift is evaluated (even trivially, on a 1-epoch shard) for
        // every commit, so each trace's span chain always runs
        // parse → queue → commit → drift.
        let drift_dur = self.obs.now_us().saturating_sub(drift_start);
        for &t in traces {
            self.obs.record_at(
                drift_start,
                OpKind::Span {
                    trace: t,
                    tenant: tenant.to_string(),
                    stage: Stage::Drift,
                    start_us: drift_start,
                    dur_us: drift_dur,
                },
            );
        }
        self.metrics.stage_latency("drift").observe(drift_dur);
        self.obs.record(OpKind::Drift {
            trace: primary,
            tenant: tenant.to_string(),
            label: drift_label,
            max_tv: verdict.max_tv,
            exceeded: verdict.drifted,
        });
        if verdict.drifted {
            self.metrics.drift_exceeded(tenant).inc();
        }

        // Derive on drift, or refresh an existing generation so
        // `current.hints` tracks the shard. Swap only when the bytes
        // actually change (first drift always changes: no file yet).
        if verdict.drifted || verdict.generation.is_some() {
            let reopt_start = self.obs.now_us();
            let derived = self.reopt.reoptimize(tenant, db);
            let reopt_dur = self.obs.span(primary, tenant, Stage::Reopt, reopt_start);
            self.metrics.stage_latency("reopt").observe(reopt_dur);
            match derived {
                Ok(bytes) => {
                    let unchanged = fs::read(swapper.current_hints_path())
                        .map(|cur| cur == bytes)
                        .unwrap_or(false);
                    if !unchanged {
                        let note = if verdict.drifted {
                            format!("drift max_tv={:.4}", verdict.max_tv)
                        } else {
                            "refresh".to_string()
                        };
                        let swap_start = self.obs.now_us();
                        match swapper.swap_in(&bytes, &note) {
                            Ok(gen) => {
                                verdict.generation = Some(gen);
                                self.metrics.reoptimize(tenant).inc();
                                let swap_dur =
                                    self.obs.span(primary, tenant, Stage::Swap, swap_start);
                                self.metrics.stage_latency("swap").observe(swap_dur);
                                self.obs.record(OpKind::Swap {
                                    trace: primary,
                                    tenant: tenant.to_string(),
                                    generation: gen,
                                    bytes: bytes.len() as u64,
                                    note: note.clone(),
                                });
                                self.obs.record(OpKind::Reopt {
                                    trace: primary,
                                    tenant: tenant.to_string(),
                                    outcome: ReoptOutcome::Swapped,
                                    generation: gen,
                                    detail: note,
                                });
                            }
                            Err(e) => {
                                eprintln!("serve: hint swap for `{tenant}` failed: {e}");
                                self.metrics.errors.inc();
                                self.obs.record(OpKind::Reopt {
                                    trace: primary,
                                    tenant: tenant.to_string(),
                                    outcome: ReoptOutcome::Failed,
                                    generation: verdict.generation.unwrap_or(0),
                                    detail: format!("swap failed: {e}"),
                                });
                            }
                        }
                    } else {
                        self.obs.record(OpKind::Reopt {
                            trace: primary,
                            tenant: tenant.to_string(),
                            outcome: ReoptOutcome::Unchanged,
                            generation: verdict.generation.unwrap_or(0),
                            detail: String::new(),
                        });
                    }
                }
                Err(reason) => {
                    eprintln!("serve: reoptimize for `{tenant}` failed: {reason}");
                    self.metrics.errors.inc();
                    self.obs.record(OpKind::Reopt {
                        trace: primary,
                        tenant: tenant.to_string(),
                        outcome: ReoptOutcome::Failed,
                        generation: verdict.generation.unwrap_or(0),
                        detail: reason,
                    });
                }
            }
        }
        if let Some(text) = report_text {
            if verdict.generation.is_some() || verdict.drifted {
                if let Err(e) = swapper.write_sidecar("drift.txt", &text) {
                    eprintln!("serve: drift sidecar for `{tenant}` failed: {e}");
                }
            }
        }
        verdict
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Verdict {
    drifted: bool,
    max_tv: f64,
    generation: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_metrics::Registry;
    use std::sync::mpsc;

    /// An aggregate with one loop branch whose iteration latencies
    /// cluster tightly around `center` — enough observations to clear
    /// `DriftConfig::min_observations`.
    fn agg(center: u64) -> AggregateProfile {
        let mut a = AggregateProfile {
            instructions: 1_000_000,
            cycles: 2_000_000,
            ..AggregateProfile::default()
        };
        let sketch = a.iter_lat.entry(0x400100).or_default();
        for i in 0..32u64 {
            sketch.record(center + (i % 5));
        }
        a.pc_misses.insert(0x400200, [0, 0, 0, 64]);
        a
    }

    fn committer(tag: &str) -> (Committer, PathBuf) {
        let root = std::env::temp_dir().join(format!("apt-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let metrics = ServeMetrics::new(&Registry::new());
        let queue = QueueDepth::new(&metrics);
        let c = Committer {
            store: ShardStore::open(root.join("db")).unwrap(),
            hints_dir: root.join("hints"),
            drift: DriftConfig::default(),
            reopt_threshold: 0.35,
            epoch_cap: 0,
            metrics,
            reopt: Arc::new(FnReoptimizer(|tenant: &str, db: &ProfileDb| {
                Ok(format!("hints for {tenant}: {} epochs\n", db.epochs.len()).into_bytes())
            })),
            obs: Arc::new(Obs::disabled()),
            queue,
            efficacy_window: 2,
            efficacy_threshold: 0.2,
        };
        (c, root)
    }

    fn job(
        tenant: &str,
        label: &str,
        center: u64,
    ) -> (Job, mpsc::Receiver<Result<Accepted, String>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                tenant: tenant.to_string(),
                label: label.to_string(),
                agg: agg(center),
                events: 1,
                received: Instant::now(),
                trace: 0,
                enqueued_us: 0,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn similar_epochs_commit_without_reoptimizing() {
        let (c, root) = committer("calm");
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e2", 100);
        c.commit_batch(vec![j1]);
        c.commit_batch(vec![j2]);
        assert!(!r1.recv().unwrap().unwrap().drifted);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(!a2.drifted, "identical distributions must not drift");
        assert_eq!(a2.shard_epochs, 2);
        assert_eq!(a2.generation, None);
        assert!(!root.join("hints/t/current.hints").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn drifted_epoch_triggers_hot_swap() {
        let (c, root) = committer("drift");
        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();

        // A far-away latency center: TV distance ≈ 1 → reoptimize.
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(a2.drifted);
        assert!(a2.max_tv > 0.9);
        assert_eq!(a2.generation, Some(1));
        assert_eq!(
            fs::read_to_string(root.join("hints/t/current.hints")).unwrap(),
            "hints for t: 2 epochs\n"
        );
        assert!(root.join("hints/t/drift.txt").exists());
        assert_eq!(c.metrics.reoptimize("t").get(), 1);
        assert_eq!(c.metrics.drift_exceeded("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_generation_refreshes_on_calm_commits() {
        let (c, root) = committer("refresh");
        // An operator-installed seed generation predates any upload.
        let sw = crate::swap::HintSwapper::open(root.join("hints/t")).unwrap();
        sw.swap_in(b"seed", "manual").unwrap();

        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        let a1 = r1.recv().unwrap().unwrap();
        assert!(!a1.drifted, "one epoch has no baseline to drift from");
        assert_eq!(a1.generation, Some(2), "refresh replaces the seed");
        let hints = root.join("hints/t/current.hints");
        assert_eq!(
            fs::read_to_string(&hints).unwrap(),
            "hints for t: 1 epochs\n"
        );

        // A second identical-distribution epoch: still no drift, but
        // the hints keep tracking the shard.
        let (j2, r2) = job("t", "e2", 100);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(!a2.drifted);
        assert_eq!(a2.generation, Some(3));
        assert_eq!(
            fs::read_to_string(&hints).unwrap(),
            "hints for t: 2 epochs\n"
        );
        assert_eq!(c.metrics.drift_exceeded("t").get(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unchanged_hint_bytes_do_not_bump_the_generation() {
        let (mut c, root) = committer("stable");
        c.reopt = Arc::new(FnReoptimizer(|_: &str, _: &ProfileDb| {
            Ok(b"constant".to_vec())
        }));
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j1]);
        c.commit_batch(vec![j2]);
        r1.recv().unwrap().unwrap();
        assert_eq!(r2.recv().unwrap().unwrap().generation, Some(1));

        // Another drifted epoch re-derives, but the bytes are identical
        // — no pointless swap, the generation stands.
        let (j3, r3) = job("t", "e3", 400);
        c.commit_batch(vec![j3]);
        assert_eq!(r3.recv().unwrap().unwrap().generation, Some(1));
        assert_eq!(c.metrics.reoptimize("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn one_batch_means_one_shard_write_per_tenant() {
        let (c, root) = committer("batch");
        let (j1, r1) = job("a", "e1", 100);
        let (j2, r2) = job("a", "e2", 100);
        let (j3, r3) = job("b", "e1", 100);
        c.commit_batch(vec![j1, j2, j3]);
        assert_eq!(r1.recv().unwrap().unwrap().shard_epochs, 2);
        assert_eq!(r2.recv().unwrap().unwrap().shard_epochs, 2);
        assert_eq!(r3.recv().unwrap().unwrap().shard_epochs, 1);
        assert_eq!(c.metrics.batches.get(), 1);
        assert_eq!(c.metrics.epochs_ingested("a").get(), 2);
        assert_eq!(c.metrics.epochs_ingested("b").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_labels_get_per_job_rejections() {
        let (c, root) = committer("dup");
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e1", 100);
        c.commit_batch(vec![j1, j2]);
        assert!(r1.recv().unwrap().is_ok());
        let err = r2.recv().unwrap().unwrap_err();
        assert!(err.contains("duplicate"), "got: {err}");
        assert_eq!(c.metrics.epochs_rejected("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn commits_leave_a_complete_op_log_trail() {
        let (mut c, root) = committer("oplog");
        let clock = Arc::new(apt_selfprof::FakeClock::new(5));
        c.obs = Arc::new(
            Obs::new(
                clock,
                Some(crate::oplog::OpLogConfig::new(root.join("oplog"))),
            )
            .unwrap(),
        );
        let (mut j1, r1) = job("t", "e1", 100);
        j1.trace = 0xA1;
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();
        let (mut j2, r2) = job("t", "e2", 400);
        j2.trace = 0xB2;
        c.commit_batch(vec![j2]);
        assert_eq!(r2.recv().unwrap().unwrap().generation, Some(1));

        let records = crate::oplog::read_oplog_dir(&root.join("oplog")).unwrap();
        // Both commits carry a full queue → commit → drift span chain
        // under their trace (parse happens in the daemon handler, not
        // the committer).
        for trace in [0xA1u64, 0xB2] {
            for stage in [Stage::Queue, Stage::Commit, Stage::Drift] {
                assert!(
                    records.iter().any(|r| matches!(
                        &r.kind,
                        OpKind::Span { trace: t, stage: s, .. } if *t == trace && *s == stage
                    )),
                    "missing {} span for trace {trace:#x}",
                    stage.name()
                );
            }
        }
        // The drifted commit's decisions are all on the log.
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Drift { trace: 0xB2, exceeded: true, label, .. } if label == "e2"
        )));
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Swap {
                trace: 0xB2,
                generation: 1,
                ..
            }
        )));
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Reopt {
                trace: 0xB2,
                outcome: ReoptOutcome::Swapped,
                generation: 1,
                ..
            }
        )));
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Epoch { trace: 0xA1, outcome: EpochOutcome::Accepted, label, .. } if label == "e1"
        )));
        let _ = fs::remove_dir_all(&root);
    }

    /// [`agg`] plus outcome feedback: tagged with `generation`, with
    /// one prefetch PC reporting `timely` of `issued` timely outcomes.
    fn tagged_agg(center: u64, generation: u64, issued: u64, timely: u64) -> AggregateProfile {
        let mut a = agg(center);
        a.gen = apt_ingest::GenTag::Gen(generation);
        a.pf_outcomes.insert(
            0x400300,
            apt_trace::PcOutcomes {
                issued,
                timely,
                late: issued - timely,
                timely_slack_cycles: timely * 100,
                late_head_start_cycles: (issued - timely) * 40,
                ..apt_trace::PcOutcomes::default()
            },
        );
        a
    }

    #[test]
    fn untagged_commits_land_on_the_ledger_baseline_bucket() {
        let (c, root) = committer("ledger-base");
        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();
        let ledger = EfficacyLedger::load_or_empty(EfficacyLedger::path(c.store.dir(), "t"));
        assert_eq!(ledger.generations.len(), 1);
        let base = &ledger.generations[&0];
        assert_eq!(base.epochs, 1);
        assert_eq!(base.instructions, 1_000_000);
        assert_eq!(base.timely_share(), None, "no outcome evidence yet");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn regressing_generation_is_rolled_back_automatically() {
        let (mut c, root) = committer("ledger-rollback");
        let clock = Arc::new(apt_selfprof::FakeClock::new(5));
        c.obs = Arc::new(
            Obs::new(
                clock,
                Some(crate::oplog::OpLogConfig::new(root.join("oplog"))),
            )
            .unwrap(),
        );
        // The derived bytes are constant, so once v2 is active every
        // refresh resolves "unchanged" and the generation sits still
        // while outcome evidence accumulates against it.
        c.reopt = Arc::new(FnReoptimizer(|_: &str, _: &ProfileDb| {
            Ok(b"tuned-v2".to_vec())
        }));
        let sw = crate::swap::HintSwapper::open(root.join("hints/t")).unwrap();
        sw.swap_in(b"tuned-v1", "manual").unwrap();

        // Epoch tagged gen 1 reports excellent outcomes; its commit
        // refreshes the hints to v2 (generation 2).
        let (mut j1, r1) = job("t", "e1", 100);
        j1.agg = tagged_agg(100, 1, 32, 30);
        c.commit_batch(vec![j1]);
        assert_eq!(r1.recv().unwrap().unwrap().generation, Some(2));

        // Two epochs tagged gen 2 report a collapsed timely share. The
        // first is below the evidence window; the second trips the
        // regression policy and the daemon rolls itself back.
        let (mut j2, r2) = job("t", "e2", 100);
        j2.agg = tagged_agg(100, 2, 32, 4);
        c.commit_batch(vec![j2]);
        assert_eq!(
            r2.recv().unwrap().unwrap().generation,
            Some(2),
            "one epoch of evidence is below the window"
        );
        let (mut j3, r3) = job("t", "e3", 100);
        j3.agg = tagged_agg(100, 2, 32, 4);
        j3.trace = 0xC3;
        c.commit_batch(vec![j3]);
        assert_eq!(r3.recv().unwrap().unwrap().generation, Some(1));

        // The previous generation's bytes are active again, the swap
        // log has the audit line, and the ledger remembers the verdict.
        assert_eq!(
            fs::read(root.join("hints/t/current.hints")).unwrap(),
            b"tuned-v1"
        );
        let log = sw.read_log().unwrap();
        assert!(
            log.iter()
                .any(|l| l.starts_with("rollback from=000002 to=000001 auto:")),
            "swap log: {log:?}"
        );
        let ledger = EfficacyLedger::load_or_empty(EfficacyLedger::path(c.store.dir(), "t"));
        assert!(ledger.generations[&2].rolled_back);
        assert_eq!(ledger.generations[&1].timely_share(), Some(30.0 / 32.0));
        assert_eq!(ledger.generations[&2].timely_share(), Some(0.125));
        assert_eq!(c.metrics.auto_rollback("t").get(), 1);
        assert_eq!(c.metrics.gen_timely_share("t", 2).get(), 0.125);

        // The op-log has both the rollback audit record and a ledger
        // record for every commit.
        let records = crate::oplog::read_oplog_dir(&root.join("oplog")).unwrap();
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Rollback { tenant, from_gen: 2, to_gen: 1, note }
                if tenant == "t" && note.starts_with("auto:")
        )));
        assert!(records.iter().any(|r| matches!(
            &r.kind,
            OpKind::Ledger { trace: 0xC3, epochs: 3, detail, .. }
                if detail == "gen 2 timely 0.1250"
        )));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failing_reoptimizer_keeps_the_old_generation() {
        let (mut c, root) = committer("fail");
        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();
        c.reopt = Arc::new(FnReoptimizer(|_: &str, _: &ProfileDb| {
            Err("module unavailable".to_string())
        }));
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(a2.drifted, "drift is still reported");
        assert_eq!(a2.generation, None, "no swap happened");
        assert!(!root.join("hints/t/current.hints").exists());
        assert!(c.metrics.errors.get() >= 1);
        let _ = fs::remove_dir_all(&root);
    }
}
