//! The single-writer committer: batches concurrent uploads into one
//! shard write per tenant, then runs drift detection and (when the
//! shard has moved) hint reoptimization on the post-commit state.
//!
//! Connection handlers parse uploads concurrently but never touch disk;
//! they hand finished [`Job`]s to one committer thread over an mpsc
//! channel. The committer drains whatever has queued up, groups it by
//! tenant, and commits each tenant's epochs with a *single* shard
//! load+save — under concurrent upload bursts the write amplification
//! drops from one save per upload to one save per tenant per batch.
//! Single-writer also makes [`ShardStore::open`]'s orphan sweep safe:
//! no other thread ever has a temp file in flight.
//!
//! Every decision the committer makes is a function of the *post-commit
//! shard*, never of arrival order:
//!
//! * drift compares the shard's canonically-newest epoch (highest
//!   label) against the merge of the rest;
//! * hints are re-derived from the whole shard when drift crosses the
//!   reoptimize threshold, and *refreshed* (swapped only if the bytes
//!   changed) on later commits once a generation exists — so once any
//!   swap has happened, `current.hints` always equals the offline
//!   [`Reoptimizer`] output for the shard as it stands.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use apt_ingest::{detect_drift, AggregateProfile, DriftConfig, Epoch, ProfileDb};

use crate::metrics::ServeMetrics;
use crate::shard::ShardStore;
use crate::swap::HintSwapper;

/// Derives hint-file bytes for a tenant from its shard. The daemon is
/// workload-agnostic; the embedder supplies the actual optimize path
/// (the CLI wires `optimize_from_db` + `serialize_hints` here).
pub trait Reoptimizer: Send + Sync {
    /// Returns the serialized hint file, or a reason hints cannot be
    /// derived (the current generation then stays in place).
    fn reoptimize(&self, tenant: &str, db: &ProfileDb) -> Result<Vec<u8>, String>;
}

/// Adapts a closure into a [`Reoptimizer`].
pub struct FnReoptimizer<F>(pub F);

impl<F> Reoptimizer for FnReoptimizer<F>
where
    F: Fn(&str, &ProfileDb) -> Result<Vec<u8>, String> + Send + Sync,
{
    fn reoptimize(&self, tenant: &str, db: &ProfileDb) -> Result<Vec<u8>, String> {
        (self.0)(tenant, db)
    }
}

/// One parsed upload, ready to commit.
pub struct Job {
    pub tenant: String,
    pub label: String,
    pub agg: AggregateProfile,
    /// Profile events parsed from the body (echoed in the reply).
    pub events: u64,
    /// When the frame arrived (ingest-latency histogram).
    pub received: Instant,
    /// Where the per-job verdict goes.
    pub reply: Sender<Result<Accepted, String>>,
}

/// A committed upload's verdict.
#[derive(Debug, Clone)]
pub struct Accepted {
    /// Epochs in the tenant's shard after the commit.
    pub shard_epochs: u64,
    /// Whether the post-commit drift crossed the reoptimize threshold.
    pub drifted: bool,
    /// Largest per-branch TV distance of the post-commit drift report.
    pub max_tv: f64,
    /// Active hint generation after the commit, if any swap has
    /// happened for this tenant.
    pub generation: Option<u64>,
}

/// The committer's configuration and long-lived state.
pub struct Committer {
    pub store: ShardStore,
    pub hints_dir: PathBuf,
    pub drift: DriftConfig,
    /// `DriftReport::exceeds` threshold that triggers reoptimization.
    pub reopt_threshold: f64,
    /// Epochs kept per shard (0 = unlimited).
    pub epoch_cap: usize,
    pub metrics: ServeMetrics,
    pub reopt: Arc<dyn Reoptimizer>,
}

impl Committer {
    /// Drains the job channel until every sender hangs up: one blocking
    /// `recv`, then everything already queued, forms one batch.
    pub fn run(&self, jobs: &Receiver<Job>) {
        while let Ok(first) = jobs.recv() {
            let mut batch = vec![first];
            while let Ok(job) = jobs.try_recv() {
                batch.push(job);
            }
            self.commit_batch(batch);
        }
    }

    /// Commits one batch: group by tenant, one shard write per tenant,
    /// then drift + reoptimization on each post-commit shard.
    pub fn commit_batch(&self, batch: Vec<Job>) {
        apt_selfprof::prof_scope!("serve/commit_batch");
        self.metrics.batches.inc();
        let mut by_tenant: BTreeMap<String, Vec<Job>> = BTreeMap::new();
        for job in batch {
            by_tenant.entry(job.tenant.clone()).or_default().push(job);
        }
        for (tenant, jobs) in by_tenant {
            self.commit_tenant(&tenant, jobs);
        }
    }

    fn commit_tenant(&self, tenant: &str, jobs: Vec<Job>) {
        let epochs: Vec<Epoch> = jobs
            .iter()
            .map(|j| Epoch {
                label: j.label.clone(),
                agg: j.agg.clone(),
            })
            .collect();
        let outcome = match self.store.apply(tenant, epochs, self.epoch_cap) {
            Ok(o) => o,
            Err(e) => {
                self.metrics.errors.add(jobs.len() as u64);
                let msg = format!("shard write failed: {e}");
                for job in jobs {
                    let _ = job.reply.send(Err(msg.clone()));
                    self.observe_latency(&job);
                }
                return;
            }
        };
        self.metrics
            .epochs_ingested(tenant)
            .add(outcome.accepted.len() as u64);
        self.metrics
            .epochs_rejected(tenant)
            .add(outcome.rejected.len() as u64);
        self.metrics
            .epochs_evicted(tenant)
            .add(outcome.evicted.len() as u64);

        let verdict = self.reoptimize_if_moved(tenant, &outcome.db);

        let mut unclaimed: HashSet<&str> = outcome.accepted.iter().map(|s| s.as_str()).collect();
        for job in jobs {
            let result = if unclaimed.remove(job.label.as_str()) {
                Ok(Accepted {
                    shard_epochs: outcome.db.epochs.len() as u64,
                    drifted: verdict.drifted,
                    max_tv: verdict.max_tv,
                    generation: verdict.generation,
                })
            } else {
                self.metrics.errors.inc();
                let reason = outcome
                    .rejected
                    .iter()
                    .find(|(l, _)| *l == job.label)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| "epoch not committed".to_string());
                Err(reason)
            };
            let _ = job.reply.send(result);
            self.observe_latency(&job);
        }
    }

    fn observe_latency(&self, job: &Job) {
        self.metrics
            .ingest_latency_us
            .observe(job.received.elapsed().as_micros() as u64);
    }

    /// Post-commit drift detection + hint reoptimization for one shard.
    fn reoptimize_if_moved(&self, tenant: &str, db: &ProfileDb) -> Verdict {
        let mut verdict = Verdict::default();
        let swapper = match HintSwapper::open(self.hints_dir.join(tenant)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: hint dir for `{tenant}` unavailable: {e}");
                self.metrics.errors.inc();
                return verdict;
            }
        };
        verdict.generation = swapper.current_generation();

        let mut report_text = None;
        if db.epochs.len() >= 2 {
            let newest = db.epochs.last().expect("non-empty");
            let report = detect_drift(
                &db.baseline(),
                &newest.agg,
                &newest.label,
                db.epochs.len() - 1,
                &self.drift,
            );
            verdict.drifted = report.exceeds(self.reopt_threshold);
            verdict.max_tv = report.max_tv_distance();
            report_text = Some(report.render());
        }
        if verdict.drifted {
            self.metrics.drift_exceeded(tenant).inc();
        }

        // Derive on drift, or refresh an existing generation so
        // `current.hints` tracks the shard. Swap only when the bytes
        // actually change (first drift always changes: no file yet).
        if verdict.drifted || verdict.generation.is_some() {
            match self.reopt.reoptimize(tenant, db) {
                Ok(bytes) => {
                    let unchanged = fs::read(swapper.current_hints_path())
                        .map(|cur| cur == bytes)
                        .unwrap_or(false);
                    if !unchanged {
                        let note = if verdict.drifted {
                            format!("drift max_tv={:.4}", verdict.max_tv)
                        } else {
                            "refresh".to_string()
                        };
                        match swapper.swap_in(&bytes, &note) {
                            Ok(gen) => {
                                verdict.generation = Some(gen);
                                self.metrics.reoptimize(tenant).inc();
                            }
                            Err(e) => {
                                eprintln!("serve: hint swap for `{tenant}` failed: {e}");
                                self.metrics.errors.inc();
                            }
                        }
                    }
                }
                Err(reason) => {
                    eprintln!("serve: reoptimize for `{tenant}` failed: {reason}");
                    self.metrics.errors.inc();
                }
            }
        }
        if let Some(text) = report_text {
            if verdict.generation.is_some() || verdict.drifted {
                if let Err(e) = swapper.write_sidecar("drift.txt", &text) {
                    eprintln!("serve: drift sidecar for `{tenant}` failed: {e}");
                }
            }
        }
        verdict
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Verdict {
    drifted: bool,
    max_tv: f64,
    generation: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_metrics::Registry;
    use std::sync::mpsc;

    /// An aggregate with one loop branch whose iteration latencies
    /// cluster tightly around `center` — enough observations to clear
    /// `DriftConfig::min_observations`.
    fn agg(center: u64) -> AggregateProfile {
        let mut a = AggregateProfile {
            instructions: 1_000_000,
            cycles: 2_000_000,
            ..AggregateProfile::default()
        };
        let sketch = a.iter_lat.entry(0x400100).or_default();
        for i in 0..32u64 {
            sketch.record(center + (i % 5));
        }
        a.pc_misses.insert(0x400200, [0, 0, 0, 64]);
        a
    }

    fn committer(tag: &str) -> (Committer, PathBuf) {
        let root = std::env::temp_dir().join(format!("apt-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let c = Committer {
            store: ShardStore::open(root.join("db")).unwrap(),
            hints_dir: root.join("hints"),
            drift: DriftConfig::default(),
            reopt_threshold: 0.35,
            epoch_cap: 0,
            metrics: ServeMetrics::new(&Registry::new()),
            reopt: Arc::new(FnReoptimizer(|tenant: &str, db: &ProfileDb| {
                Ok(format!("hints for {tenant}: {} epochs\n", db.epochs.len()).into_bytes())
            })),
        };
        (c, root)
    }

    fn job(
        tenant: &str,
        label: &str,
        center: u64,
    ) -> (Job, mpsc::Receiver<Result<Accepted, String>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                tenant: tenant.to_string(),
                label: label.to_string(),
                agg: agg(center),
                events: 1,
                received: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn similar_epochs_commit_without_reoptimizing() {
        let (c, root) = committer("calm");
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e2", 100);
        c.commit_batch(vec![j1]);
        c.commit_batch(vec![j2]);
        assert!(!r1.recv().unwrap().unwrap().drifted);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(!a2.drifted, "identical distributions must not drift");
        assert_eq!(a2.shard_epochs, 2);
        assert_eq!(a2.generation, None);
        assert!(!root.join("hints/t/current.hints").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn drifted_epoch_triggers_hot_swap() {
        let (c, root) = committer("drift");
        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();

        // A far-away latency center: TV distance ≈ 1 → reoptimize.
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(a2.drifted);
        assert!(a2.max_tv > 0.9);
        assert_eq!(a2.generation, Some(1));
        assert_eq!(
            fs::read_to_string(root.join("hints/t/current.hints")).unwrap(),
            "hints for t: 2 epochs\n"
        );
        assert!(root.join("hints/t/drift.txt").exists());
        assert_eq!(c.metrics.reoptimize("t").get(), 1);
        assert_eq!(c.metrics.drift_exceeded("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_generation_refreshes_on_calm_commits() {
        let (c, root) = committer("refresh");
        // An operator-installed seed generation predates any upload.
        let sw = crate::swap::HintSwapper::open(root.join("hints/t")).unwrap();
        sw.swap_in(b"seed", "manual").unwrap();

        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        let a1 = r1.recv().unwrap().unwrap();
        assert!(!a1.drifted, "one epoch has no baseline to drift from");
        assert_eq!(a1.generation, Some(2), "refresh replaces the seed");
        let hints = root.join("hints/t/current.hints");
        assert_eq!(
            fs::read_to_string(&hints).unwrap(),
            "hints for t: 1 epochs\n"
        );

        // A second identical-distribution epoch: still no drift, but
        // the hints keep tracking the shard.
        let (j2, r2) = job("t", "e2", 100);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(!a2.drifted);
        assert_eq!(a2.generation, Some(3));
        assert_eq!(
            fs::read_to_string(&hints).unwrap(),
            "hints for t: 2 epochs\n"
        );
        assert_eq!(c.metrics.drift_exceeded("t").get(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unchanged_hint_bytes_do_not_bump_the_generation() {
        let (mut c, root) = committer("stable");
        c.reopt = Arc::new(FnReoptimizer(|_: &str, _: &ProfileDb| {
            Ok(b"constant".to_vec())
        }));
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j1]);
        c.commit_batch(vec![j2]);
        r1.recv().unwrap().unwrap();
        assert_eq!(r2.recv().unwrap().unwrap().generation, Some(1));

        // Another drifted epoch re-derives, but the bytes are identical
        // — no pointless swap, the generation stands.
        let (j3, r3) = job("t", "e3", 400);
        c.commit_batch(vec![j3]);
        assert_eq!(r3.recv().unwrap().unwrap().generation, Some(1));
        assert_eq!(c.metrics.reoptimize("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn one_batch_means_one_shard_write_per_tenant() {
        let (c, root) = committer("batch");
        let (j1, r1) = job("a", "e1", 100);
        let (j2, r2) = job("a", "e2", 100);
        let (j3, r3) = job("b", "e1", 100);
        c.commit_batch(vec![j1, j2, j3]);
        assert_eq!(r1.recv().unwrap().unwrap().shard_epochs, 2);
        assert_eq!(r2.recv().unwrap().unwrap().shard_epochs, 2);
        assert_eq!(r3.recv().unwrap().unwrap().shard_epochs, 1);
        assert_eq!(c.metrics.batches.get(), 1);
        assert_eq!(c.metrics.epochs_ingested("a").get(), 2);
        assert_eq!(c.metrics.epochs_ingested("b").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_labels_get_per_job_rejections() {
        let (c, root) = committer("dup");
        let (j1, r1) = job("t", "e1", 100);
        let (j2, r2) = job("t", "e1", 100);
        c.commit_batch(vec![j1, j2]);
        assert!(r1.recv().unwrap().is_ok());
        let err = r2.recv().unwrap().unwrap_err();
        assert!(err.contains("duplicate"), "got: {err}");
        assert_eq!(c.metrics.epochs_rejected("t").get(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failing_reoptimizer_keeps_the_old_generation() {
        let (mut c, root) = committer("fail");
        let (j1, r1) = job("t", "e1", 100);
        c.commit_batch(vec![j1]);
        r1.recv().unwrap().unwrap();
        c.reopt = Arc::new(FnReoptimizer(|_: &str, _: &ProfileDb| {
            Err("module unavailable".to_string())
        }));
        let (j2, r2) = job("t", "e2", 400);
        c.commit_batch(vec![j2]);
        let a2 = r2.recv().unwrap().unwrap();
        assert!(a2.drifted, "drift is still reported");
        assert_eq!(a2.generation, None, "no swap happened");
        assert!(!root.join("hints/t/current.hints").exists());
        assert!(c.metrics.errors.get() >= 1);
        let _ = fs::remove_dir_all(&root);
    }
}
