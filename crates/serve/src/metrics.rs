//! Daemon metric families, pre-registered in the shared
//! [`apt_metrics::Registry`] so they ride the existing `/metrics`
//! exposition server unchanged.
//!
//! Per-tenant series are labelled `tenant="<name>"` (DESIGN.md §13
//! naming: `apt_serve_<what>_<unit>`); series materialise lazily the
//! first time a tenant touches the daemon, so an idle daemon exports
//! only the unlabelled totals.

use apt_metrics::{Counter, Histogram, Registry, WALL_US_BUCKETS};

/// Handles for the daemon-global (unlabelled) families plus the shared
/// registry for lazily materialising per-tenant series.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Registry,
    /// Accepted connections.
    pub connections: Counter,
    /// Frames that failed protocol validation or parsing.
    pub errors: Counter,
    /// Committer batches flushed.
    pub batches: Counter,
    /// Upload bodies' bytes read off the wire.
    pub body_bytes: Counter,
    /// Wall time from frame receipt to committed reply, per upload.
    pub ingest_latency_us: Histogram,
}

impl ServeMetrics {
    /// Registers the daemon families in `registry` (a disabled registry
    /// yields no-op handles throughout, preserving the zero-cost-off
    /// discipline).
    pub fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            registry: registry.clone(),
            connections: registry.counter(
                "apt_serve_connections_total",
                "TCP connections accepted by the reoptimization daemon",
                &[],
            ),
            errors: registry.counter(
                "apt_serve_errors_total",
                "Upload frames rejected (protocol, validation or parse errors)",
                &[],
            ),
            batches: registry.counter(
                "apt_serve_batches_total",
                "Committer batches flushed to shard storage",
                &[],
            ),
            body_bytes: registry.counter(
                "apt_serve_body_bytes_total",
                "Profile dump bytes streamed off the wire",
                &[],
            ),
            ingest_latency_us: registry.histogram(
                "apt_serve_ingest_latency_us",
                "Wall microseconds from upload receipt to committed reply",
                &[],
                &WALL_US_BUCKETS,
            ),
        }
    }

    /// Per-tenant accepted-epoch counter.
    pub fn epochs_ingested(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_ingested_total",
            "Profile epochs accepted into a tenant's shard",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant rejected-epoch counter (duplicates, validation).
    pub fn epochs_rejected(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_rejected_total",
            "Profile epochs refused (duplicate label or invalid)",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant cap-evicted-epoch counter.
    pub fn epochs_evicted(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_evicted_total",
            "Profile epochs garbage-collected by the epoch cap",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant reoptimization (hint hot-swap) counter.
    pub fn reoptimize(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_reoptimize_total",
            "Hint files re-derived and hot-swapped after drift",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant drift-exceeded counter (fires whether or not the swap
    /// succeeds, so alerting sees drift even when reoptimization fails).
    pub fn drift_exceeded(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_drift_exceeded_total",
            "Epoch commits whose drift crossed the reoptimize threshold",
            &[("tenant", tenant)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_metrics::prom;

    /// The satellite round-trip: every serve family renders through the
    /// in-repo Prometheus text renderer and parses back with the in-repo
    /// parser, values intact, per-tenant labels preserved.
    #[test]
    fn serve_families_round_trip_through_prometheus_text() {
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry);
        m.connections.add(3);
        m.errors.inc();
        m.batches.add(2);
        m.body_bytes.add(4096);
        m.ingest_latency_us.observe(750);
        m.ingest_latency_us.observe(12_000);
        m.epochs_ingested("BFS").add(5);
        m.epochs_ingested("IS").add(2);
        m.epochs_rejected("BFS").inc();
        m.epochs_evicted("BFS").add(3);
        m.reoptimize("BFS").inc();
        m.drift_exceeded("BFS").inc();

        let text = prom::render_prometheus(&registry);
        let exp = prom::parse(&text).expect("exposition parses");
        assert_eq!(exp.value("apt_serve_connections_total", &[]), Some(3.0));
        assert_eq!(exp.value("apt_serve_errors_total", &[]), Some(1.0));
        assert_eq!(exp.value("apt_serve_batches_total", &[]), Some(2.0));
        assert_eq!(exp.value("apt_serve_body_bytes_total", &[]), Some(4096.0));
        assert_eq!(
            exp.value("apt_serve_epochs_ingested_total", &[("tenant", "BFS")]),
            Some(5.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_ingested_total", &[("tenant", "IS")]),
            Some(2.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_rejected_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_evicted_total", &[("tenant", "BFS")]),
            Some(3.0)
        );
        assert_eq!(
            exp.value("apt_serve_reoptimize_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_drift_exceeded_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_ingest_latency_us_count", &[]),
            Some(2.0)
        );
        assert_eq!(
            exp.value("apt_serve_ingest_latency_us_sum", &[]),
            Some(12_750.0)
        );
    }

    #[test]
    fn disabled_registry_keeps_everything_noop() {
        let m = ServeMetrics::new(&Registry::disabled());
        assert!(m.connections.is_noop());
        assert!(m.epochs_ingested("BFS").is_noop());
        assert!(m.reoptimize("BFS").is_noop());
        m.connections.inc();
        assert_eq!(m.connections.get(), 0);
    }
}
