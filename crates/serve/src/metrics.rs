//! Daemon metric families, pre-registered in the shared
//! [`apt_metrics::Registry`] so they ride the existing `/metrics`
//! exposition server unchanged.
//!
//! Per-tenant series are labelled `tenant="<name>"` (DESIGN.md §13
//! naming: `apt_serve_<what>_<unit>`); series materialise lazily the
//! first time a tenant touches the daemon, so an idle daemon exports
//! only the unlabelled totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apt_metrics::{Counter, Gauge, Histogram, Registry, WALL_US_BUCKETS};

/// Handles for the daemon-global (unlabelled) families plus the shared
/// registry for lazily materialising per-tenant series.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Registry,
    /// Accepted connections.
    pub connections: Counter,
    /// Frames that failed protocol validation or parsing.
    pub errors: Counter,
    /// Committer batches flushed.
    pub batches: Counter,
    /// Upload bodies' bytes read off the wire.
    pub body_bytes: Counter,
    /// Wall time from frame receipt to committed reply, per upload.
    pub ingest_latency_us: Histogram,
    /// Jobs currently parked in the committer queue.
    pub queue_depth: Gauge,
    /// Deepest the committer queue has ever been.
    pub queue_high_water: Gauge,
    /// Largest batch one committer drain has ever collected.
    pub batch_jobs_high_water: Gauge,
}

impl ServeMetrics {
    /// Registers the daemon families in `registry` (a disabled registry
    /// yields no-op handles throughout, preserving the zero-cost-off
    /// discipline).
    pub fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            registry: registry.clone(),
            connections: registry.counter(
                "apt_serve_connections_total",
                "TCP connections accepted by the reoptimization daemon",
                &[],
            ),
            errors: registry.counter(
                "apt_serve_errors_total",
                "Upload frames rejected (protocol, validation or parse errors)",
                &[],
            ),
            batches: registry.counter(
                "apt_serve_batches_total",
                "Committer batches flushed to shard storage",
                &[],
            ),
            body_bytes: registry.counter(
                "apt_serve_body_bytes_total",
                "Profile dump bytes streamed off the wire",
                &[],
            ),
            ingest_latency_us: registry.histogram(
                "apt_serve_ingest_latency_us",
                "Wall microseconds from upload receipt to committed reply",
                &[],
                &WALL_US_BUCKETS,
            ),
            queue_depth: registry.gauge(
                "apt_serve_queue_depth",
                "Uploads parked in the committer queue right now",
                &[],
            ),
            queue_high_water: registry.gauge(
                "apt_serve_queue_depth_high_water",
                "Deepest the committer queue has been since daemon start",
                &[],
            ),
            batch_jobs_high_water: registry.gauge(
                "apt_serve_batch_jobs_high_water",
                "Largest job count one committer batch has drained",
                &[],
            ),
        }
    }

    /// Per-stage request-span latency histogram (`stage` is one of the
    /// [`crate::oplog::Stage`] names).
    pub fn stage_latency(&self, stage: &str) -> Histogram {
        self.registry.histogram(
            "apt_serve_stage_latency_us",
            "Wall microseconds spent per request pipeline stage",
            &[("stage", stage)],
            &WALL_US_BUCKETS,
        )
    }

    /// Per-tenant accepted-epoch counter.
    pub fn epochs_ingested(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_ingested_total",
            "Profile epochs accepted into a tenant's shard",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant rejected-epoch counter (duplicates, validation).
    pub fn epochs_rejected(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_rejected_total",
            "Profile epochs refused (duplicate label or invalid)",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant cap-evicted-epoch counter.
    pub fn epochs_evicted(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_epochs_evicted_total",
            "Profile epochs garbage-collected by the epoch cap",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant reoptimization (hint hot-swap) counter.
    pub fn reoptimize(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_reoptimize_total",
            "Hint files re-derived and hot-swapped after drift",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant drift-exceeded counter (fires whether or not the swap
    /// succeeds, so alerting sees drift even when reoptimization fails).
    pub fn drift_exceeded(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_drift_exceeded_total",
            "Epoch commits whose drift crossed the reoptimize threshold",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant automatic-rollback counter: the efficacy regression
    /// policy repointed `current.hints` at an earlier generation.
    pub fn auto_rollback(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "apt_serve_auto_rollback_total",
            "Hint generations rolled back by the efficacy regression policy",
            &[("tenant", tenant)],
        )
    }

    /// Per-(tenant, generation) timely share of reported prefetch
    /// outcomes; materialises once a generation has outcome evidence.
    pub fn gen_timely_share(&self, tenant: &str, generation: u64) -> Gauge {
        self.registry.gauge(
            "apt_serve_gen_timely_share",
            "Timely share of prefetch outcomes reported per hint generation",
            &[("tenant", tenant), ("generation", &generation.to_string())],
        )
    }

    /// Per-(tenant, generation) count of epochs on the efficacy ledger.
    pub fn gen_epochs(&self, tenant: &str, generation: u64) -> Gauge {
        self.registry.gauge(
            "apt_serve_gen_epochs",
            "Epochs of outcome evidence on the efficacy ledger per hint generation",
            &[("tenant", tenant), ("generation", &generation.to_string())],
        )
    }
}

/// Shared committer-queue accounting: the acceptor bumps it as jobs
/// enqueue, the committer drains it per batch, and both the live gauge
/// and the high-water marks follow along. The authoritative counters
/// are plain atomics so depth reads stay exact even when the metrics
/// registry is disabled (the `serve-status` backlog warning needs them).
#[derive(Clone)]
pub struct QueueDepth {
    depth: Arc<AtomicU64>,
    high: Arc<AtomicU64>,
    batch_high: Arc<AtomicU64>,
    depth_gauge: Gauge,
    high_gauge: Gauge,
    batch_high_gauge: Gauge,
}

impl std::fmt::Debug for QueueDepth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueDepth")
            .field("depth", &self.depth())
            .field("high_water", &self.high_water())
            .finish()
    }
}

impl QueueDepth {
    pub fn new(metrics: &ServeMetrics) -> QueueDepth {
        QueueDepth {
            depth: Arc::new(AtomicU64::new(0)),
            high: Arc::new(AtomicU64::new(0)),
            batch_high: Arc::new(AtomicU64::new(0)),
            depth_gauge: metrics.queue_depth.clone(),
            high_gauge: metrics.queue_high_water.clone(),
            batch_high_gauge: metrics.batch_jobs_high_water.clone(),
        }
    }

    /// One job entered the queue; returns the new depth.
    pub fn enter(&self) -> u64 {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(depth, Ordering::Relaxed);
        self.depth_gauge.set(depth as f64);
        self.high_gauge
            .set(self.high.load(Ordering::Relaxed) as f64);
        depth
    }

    /// `n` jobs left the queue (one committer batch drain).
    pub fn exit_n(&self, n: u64) {
        let depth = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(n))
            })
            .unwrap()
            .saturating_sub(n);
        self.depth_gauge.set(depth as f64);
    }

    /// Records one batch's job count against the batch high-water mark.
    pub fn note_batch(&self, jobs: u64) {
        self.batch_high.fetch_max(jobs, Ordering::Relaxed);
        self.batch_high_gauge
            .set(self.batch_high.load(Ordering::Relaxed) as f64);
    }

    /// Current queue depth.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Deepest the queue has been.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_metrics::prom;

    /// The satellite round-trip: every serve family renders through the
    /// in-repo Prometheus text renderer and parses back with the in-repo
    /// parser, values intact, per-tenant labels preserved.
    #[test]
    fn serve_families_round_trip_through_prometheus_text() {
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry);
        m.connections.add(3);
        m.errors.inc();
        m.batches.add(2);
        m.body_bytes.add(4096);
        m.ingest_latency_us.observe(750);
        m.ingest_latency_us.observe(12_000);
        m.epochs_ingested("BFS").add(5);
        m.epochs_ingested("IS").add(2);
        m.epochs_rejected("BFS").inc();
        m.epochs_evicted("BFS").add(3);
        m.reoptimize("BFS").inc();
        m.drift_exceeded("BFS").inc();
        m.auto_rollback("BFS").inc();
        m.gen_timely_share("BFS", 2).set(0.125);
        m.gen_epochs("BFS", 2).set(3.0);

        let text = prom::render_prometheus(&registry);
        let exp = prom::parse(&text).expect("exposition parses");
        assert_eq!(exp.value("apt_serve_connections_total", &[]), Some(3.0));
        assert_eq!(exp.value("apt_serve_errors_total", &[]), Some(1.0));
        assert_eq!(exp.value("apt_serve_batches_total", &[]), Some(2.0));
        assert_eq!(exp.value("apt_serve_body_bytes_total", &[]), Some(4096.0));
        assert_eq!(
            exp.value("apt_serve_epochs_ingested_total", &[("tenant", "BFS")]),
            Some(5.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_ingested_total", &[("tenant", "IS")]),
            Some(2.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_rejected_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_epochs_evicted_total", &[("tenant", "BFS")]),
            Some(3.0)
        );
        assert_eq!(
            exp.value("apt_serve_reoptimize_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_drift_exceeded_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value("apt_serve_auto_rollback_total", &[("tenant", "BFS")]),
            Some(1.0)
        );
        assert_eq!(
            exp.value(
                "apt_serve_gen_timely_share",
                &[("tenant", "BFS"), ("generation", "2")]
            ),
            Some(0.125)
        );
        assert_eq!(
            exp.value(
                "apt_serve_gen_epochs",
                &[("tenant", "BFS"), ("generation", "2")]
            ),
            Some(3.0)
        );
        assert_eq!(
            exp.value("apt_serve_ingest_latency_us_count", &[]),
            Some(2.0)
        );
        assert_eq!(
            exp.value("apt_serve_ingest_latency_us_sum", &[]),
            Some(12_750.0)
        );
    }

    #[test]
    fn disabled_registry_keeps_everything_noop() {
        let m = ServeMetrics::new(&Registry::disabled());
        assert!(m.connections.is_noop());
        assert!(m.epochs_ingested("BFS").is_noop());
        assert!(m.reoptimize("BFS").is_noop());
        m.connections.inc();
        assert_eq!(m.connections.get(), 0);
    }

    #[test]
    fn queue_depth_tracks_gauges_and_high_water() {
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry);
        let q = QueueDepth::new(&m);
        assert_eq!(q.enter(), 1);
        assert_eq!(q.enter(), 2);
        assert_eq!(q.enter(), 3);
        q.exit_n(2);
        q.note_batch(2);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.high_water(), 3);
        assert_eq!(
            registry.gauge_value("apt_serve_queue_depth", &[]),
            Some(1.0)
        );
        assert_eq!(
            registry.gauge_value("apt_serve_queue_depth_high_water", &[]),
            Some(3.0)
        );
        assert_eq!(
            registry.gauge_value("apt_serve_batch_jobs_high_water", &[]),
            Some(2.0)
        );
        // Draining more than the depth saturates instead of wrapping.
        q.exit_n(10);
        assert_eq!(q.depth(), 0);

        // Depth stays exact without a registry.
        let q = QueueDepth::new(&ServeMetrics::new(&Registry::disabled()));
        q.enter();
        assert_eq!(q.depth(), 1);
        assert_eq!(q.high_water(), 1);
    }

    #[test]
    fn stage_latency_series_are_labelled_per_stage() {
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry);
        m.stage_latency("parse").observe(100);
        m.stage_latency("parse").observe(300);
        m.stage_latency("commit").observe(50);
        let text = prom::render_prometheus(&registry);
        let exp = prom::parse(&text).expect("exposition parses");
        assert_eq!(
            exp.value("apt_serve_stage_latency_us_count", &[("stage", "parse")]),
            Some(2.0)
        );
        assert_eq!(
            exp.value("apt_serve_stage_latency_us_sum", &[("stage", "commit")]),
            Some(50.0)
        );
    }
}
