//! The sharded profile store: one `APTDB1` database per tenant.
//!
//! Multi-tenancy splits the single profile database of `apt-ingest` §12
//! into per-tenant shard files (`<dir>/<tenant>.aptdb`), so concurrent
//! tenants never contend on one file and a corrupt shard only costs one
//! tenant its history. Two properties carry the daemon's correctness:
//!
//! * **Canonical epoch order.** Epochs are kept sorted by label, not by
//!   arrival. [`AggregateProfile`](apt_ingest::AggregateProfile) merges
//!   are associative and commutative, so the *content* of a shard never
//!   depends on arrival order — sorting makes the *bytes* arrival-order
//!   independent too, and pins down "newest epoch" (the drift subject)
//!   deterministically. Duplicate labels are rejected: accepting one
//!   silently would double-count its evidence.
//! * **Crash safety.** Writes go through [`apt_ingest::ProfileDb::save`]
//!   (temp file + rename); [`ShardStore::open`] sweeps temp files an
//!   earlier crash orphaned. A torn write can therefore never corrupt a
//!   shard — readers see old bytes or new bytes, nothing in between.
//!
//! Epoch GC bounds history: with a cap of `n`, committing keeps the `n`
//! highest labels. Because the survivor set is "top `n` of the union of
//! everything ever accepted", it too is arrival-order independent.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use apt_ingest::{Epoch, ProfileDb};

/// Shard file extension.
const SHARD_EXT: &str = "aptdb";

/// The per-tenant shard directory.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: PathBuf,
}

/// One batch commit's outcome for a single tenant.
#[derive(Debug, Clone)]
pub struct ApplyOutcome {
    /// The post-commit shard.
    pub db: ProfileDb,
    /// Labels inserted by this commit, in canonical (label) order.
    pub accepted: Vec<String>,
    /// `(label, reason)` for epochs the commit refused.
    pub rejected: Vec<(String, String)>,
    /// Labels the epoch cap evicted, oldest (lowest label) first.
    pub evicted: Vec<String>,
}

impl ShardStore {
    /// Opens (creating if necessary) a shard directory and sweeps temp
    /// files orphaned by crashed writers.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ShardStore> {
        let store = ShardStore { dir: dir.into() };
        fs::create_dir_all(&store.dir)?;
        for entry in fs::read_dir(&store.dir)?.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // `ProfileDb::save` temp names are `<tenant>.tmp.<pid>`.
            if let Some((_, pid)) = name.rsplit_once(".tmp.") {
                if !pid.is_empty() && pid.bytes().all(|b| b.is_ascii_digit()) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(store)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard file a tenant maps to.
    pub fn shard_path(&self, tenant: &str) -> PathBuf {
        self.dir.join(format!("{tenant}.{SHARD_EXT}"))
    }

    /// Loads a tenant's shard (empty when absent or corrupt). Read-only:
    /// no orphan sweep, so concurrent committer writes are never raced.
    pub fn load(&self, tenant: &str) -> ProfileDb {
        ProfileDb::load_or_empty(self.shard_path(tenant))
    }

    /// All tenants with a shard on disk, sorted.
    pub fn tenants(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)?.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(&format!(".{SHARD_EXT}")) {
                out.push(stem.to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Commits a batch of epochs to one tenant's shard: load once, insert
    /// every epoch at its canonical (label-sorted) position, GC down to
    /// `epoch_cap` (0 = unlimited), save once. Duplicate labels — against
    /// the shard or within the batch — are rejected, not merged.
    pub fn apply(
        &self,
        tenant: &str,
        epochs: Vec<Epoch>,
        epoch_cap: usize,
    ) -> io::Result<ApplyOutcome> {
        apt_selfprof::prof_scope!("serve/shard/apply");
        let path = self.shard_path(tenant);
        let mut db = ProfileDb::open(&path);
        let mut outcome = ApplyOutcome {
            db: ProfileDb::new(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            evicted: Vec::new(),
        };
        for epoch in epochs {
            match db.epochs.binary_search_by(|e| e.label.cmp(&epoch.label)) {
                Ok(_) => outcome
                    .rejected
                    .push((epoch.label, "duplicate epoch label".to_string())),
                Err(pos) => {
                    outcome.accepted.push(epoch.label.clone());
                    db.epochs.insert(pos, epoch);
                }
            }
        }
        if epoch_cap > 0 && db.epochs.len() > epoch_cap {
            let drop = db.epochs.len() - epoch_cap;
            outcome
                .evicted
                .extend(db.epochs.drain(..drop).map(|e| e.label));
        }
        if !outcome.accepted.is_empty() || !outcome.evicted.is_empty() {
            db.save(&path)?;
        }
        outcome.accepted.sort();
        outcome.db = db;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_ingest::AggregateProfile;

    fn epoch(label: &str, instructions: u64) -> Epoch {
        Epoch {
            label: label.to_string(),
            agg: AggregateProfile {
                instructions,
                ..AggregateProfile::default()
            },
        }
    }

    fn tmp_store(tag: &str) -> ShardStore {
        let dir = std::env::temp_dir().join(format!("apt-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ShardStore::open(dir).expect("opens")
    }

    #[test]
    fn epochs_land_in_label_order_regardless_of_arrival() {
        let store = tmp_store("order");
        store
            .apply("t", vec![epoch("c", 3), epoch("a", 1)], 0)
            .unwrap();
        let out = store.apply("t", vec![epoch("b", 2)], 0).unwrap();
        let labels: Vec<&str> = out.db.epochs.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);

        // A different arrival order produces byte-identical shard files.
        let store2 = tmp_store("order2");
        store2
            .apply("t", vec![epoch("b", 2), epoch("a", 1), epoch("c", 3)], 0)
            .unwrap();
        assert_eq!(
            fs::read(store.shard_path("t")).unwrap(),
            fs::read(store2.shard_path("t")).unwrap()
        );
        let _ = fs::remove_dir_all(store.dir());
        let _ = fs::remove_dir_all(store2.dir());
    }

    #[test]
    fn duplicate_labels_are_rejected_not_merged() {
        let store = tmp_store("dup");
        store.apply("t", vec![epoch("a", 1)], 0).unwrap();
        let out = store
            .apply("t", vec![epoch("a", 999), epoch("b", 2)], 0)
            .unwrap();
        assert_eq!(out.accepted, ["b"]);
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].0, "a");
        // The original epoch's evidence is untouched.
        assert_eq!(out.db.epochs[0].agg.instructions, 1);
        // In-batch duplicates: first wins, second rejected.
        let out = store
            .apply("t", vec![epoch("c", 1), epoch("c", 2)], 0)
            .unwrap();
        assert_eq!(out.accepted, ["c"]);
        assert_eq!(out.rejected.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn epoch_cap_keeps_the_highest_labels() {
        let store = tmp_store("gc");
        let out = store
            .apply(
                "t",
                vec![epoch("d", 4), epoch("a", 1), epoch("c", 3), epoch("b", 2)],
                2,
            )
            .unwrap();
        assert_eq!(out.evicted, ["a", "b"]);
        let labels: Vec<&str> = out.db.epochs.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["c", "d"]);

        // A late arrival below the survivors is admitted then collected:
        // the survivor set stays "top-cap of everything ever accepted".
        let out = store.apply("t", vec![epoch("b", 2)], 2).unwrap();
        assert_eq!(out.accepted, ["b"]);
        assert_eq!(out.evicted, ["b"]);
        let labels: Vec<&str> = out.db.epochs.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["c", "d"]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tenants_are_isolated_and_listed() {
        let store = tmp_store("multi");
        store.apply("zeta", vec![epoch("a", 1)], 0).unwrap();
        store.apply("alpha", vec![epoch("a", 2)], 0).unwrap();
        assert_eq!(store.tenants().unwrap(), ["alpha", "zeta"]);
        assert_eq!(store.load("zeta").epochs[0].agg.instructions, 1);
        assert_eq!(store.load("alpha").epochs[0].agg.instructions, 2);
        assert!(store.load("missing").epochs.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn open_sweeps_orphans_of_any_tenant() {
        let store = tmp_store("sweep");
        store.apply("t", vec![epoch("a", 1)], 0).unwrap();
        let before = fs::read(store.shard_path("t")).unwrap();
        fs::write(store.dir().join("t.tmp.1234"), b"partial").unwrap();
        fs::write(store.dir().join("u.tmp.99"), b"partial").unwrap();
        fs::write(store.dir().join("not-a-temp.txt"), b"keep").unwrap();

        let reopened = ShardStore::open(store.dir()).unwrap();
        assert!(!store.dir().join("t.tmp.1234").exists());
        assert!(!store.dir().join("u.tmp.99").exists());
        assert!(store.dir().join("not-a-temp.txt").exists());
        assert_eq!(fs::read(reopened.shard_path("t")).unwrap(), before);
        let _ = fs::remove_dir_all(store.dir());
    }
}
