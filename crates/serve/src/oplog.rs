//! The structured daemon op-log: every lifecycle event the
//! reoptimization daemon takes — connection open/close, per-stage
//! request spans, epoch accept/reject/evict, batch commits, drift
//! scores, reoptimize decisions, hint swaps and rollbacks — persisted
//! as versioned JSONL with size-based rotation.
//!
//! Design rules (the same serializer discipline as `APTDB1` and the
//! bench snapshots):
//!
//! * **canonical writer** — every record serializes with a fixed field
//!   order, so parse → re-serialize is byte-identical (property-tested
//!   in `tests/oplog_roundtrip.rs`). Trace IDs are 16-digit hex strings
//!   because JSON numbers cannot hold all of `u64` exactly.
//! * **rotation never splits a record** — a record is appended whole;
//!   when the active `oplog.jsonl` crosses the size cap it is renamed to
//!   the next `oplog.NNNNN.jsonl` and a fresh active file starts.
//! * **torn tails are tolerated on read** — a crash mid-append (or a
//!   crash racing rotation) leaves a final line without a newline; the
//!   reader drops it on any file instead of failing, and
//!   [`OpLogWriter::open`] truncates a torn active file so later
//!   appends start on a fresh line.
//! * **timestamps flow through a [`Clock`]** — the daemon injects a
//!   `selfprof` clock, so golden tests swap in a `FakeClock` and assert
//!   the log (and everything rendered from it) byte-for-byte.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use apt_metrics::json::{self, Json};
use apt_selfprof::{Clock, MonotonicClock};

/// Format version written in every record's `v` field.
/// Format invariant: numeric fields ride the JSON number grammar, whose
/// in-repo parser is `f64`-backed — they must stay below 2^53 to
/// round-trip exactly. Every field qualifies by construction (µs
/// timestamps reach 2^53 after ~285 years; counts and generations are
/// small) except trace IDs, which use the full 64 bits and therefore
/// travel as 16-hex-digit strings instead.
pub const OPLOG_VERSION: u64 = 1;
/// The file currently being appended to.
pub const ACTIVE_FILE: &str = "oplog.jsonl";
/// Default rotation threshold for the active file.
pub const DEFAULT_MAX_FILE_BYTES: u64 = 1 << 20;

/// A pipeline stage a request span can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Streaming the upload body off the socket into the parser.
    Parse,
    /// Waiting in the committer's mpsc queue.
    Queue,
    /// The single-writer shard commit.
    Commit,
    /// Post-commit drift evaluation.
    Drift,
    /// Hint re-derivation through the [`crate::Reoptimizer`].
    Reopt,
    /// The atomic hint hot-swap.
    Swap,
}

/// Every stage in pipeline order (dashboard stacking order).
pub const STAGES: [Stage; 6] = [
    Stage::Parse,
    Stage::Queue,
    Stage::Commit,
    Stage::Drift,
    Stage::Reopt,
    Stage::Swap,
];

impl Stage {
    /// Wire/metric name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Commit => "commit",
            Stage::Drift => "drift",
            Stage::Reopt => "reopt",
            Stage::Swap => "swap",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|s| s.name() == name)
    }
}

/// What happened to one uploaded epoch at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    Accepted,
    Rejected,
    Evicted,
}

impl EpochOutcome {
    pub fn name(self) -> &'static str {
        match self {
            EpochOutcome::Accepted => "accepted",
            EpochOutcome::Rejected => "rejected",
            EpochOutcome::Evicted => "evicted",
        }
    }

    pub fn from_name(name: &str) -> Option<EpochOutcome> {
        [
            EpochOutcome::Accepted,
            EpochOutcome::Rejected,
            EpochOutcome::Evicted,
        ]
        .into_iter()
        .find(|o| o.name() == name)
    }
}

/// How a reoptimize decision resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptOutcome {
    /// New hint bytes were derived and hot-swapped in.
    Swapped,
    /// Derivation succeeded but the bytes matched `current.hints`.
    Unchanged,
    /// The reoptimizer (or the swap) failed; the old generation stands.
    Failed,
}

impl ReoptOutcome {
    pub fn name(self) -> &'static str {
        match self {
            ReoptOutcome::Swapped => "swapped",
            ReoptOutcome::Unchanged => "unchanged",
            ReoptOutcome::Failed => "failed",
        }
    }

    pub fn from_name(name: &str) -> Option<ReoptOutcome> {
        [
            ReoptOutcome::Swapped,
            ReoptOutcome::Unchanged,
            ReoptOutcome::Failed,
        ]
        .into_iter()
        .find(|o| o.name() == name)
    }
}

/// One op-log event. `generation` 0 means "none" (real generations
/// start at 1); `trace` 0 marks events not attributable to one upload
/// (e.g. cap evictions displacing an older epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    ConnOpen {
        conn: u64,
    },
    ConnClose {
        conn: u64,
    },
    Span {
        trace: u64,
        tenant: String,
        stage: Stage,
        start_us: u64,
        dur_us: u64,
    },
    Epoch {
        trace: u64,
        tenant: String,
        label: String,
        outcome: EpochOutcome,
        detail: String,
    },
    Batch {
        jobs: u64,
        tenants: u64,
        queue_depth: u64,
    },
    Drift {
        trace: u64,
        tenant: String,
        label: String,
        max_tv: f64,
        exceeded: bool,
    },
    Reopt {
        trace: u64,
        tenant: String,
        outcome: ReoptOutcome,
        generation: u64,
        detail: String,
    },
    Swap {
        trace: u64,
        tenant: String,
        generation: u64,
        bytes: u64,
        note: String,
    },
    Rollback {
        tenant: String,
        from_gen: u64,
        to_gen: u64,
        note: String,
    },
    /// One efficacy-ledger commit: outcome evidence landed for a
    /// tenant. `generations`/`epochs` are the post-commit ledger
    /// totals; `detail` summarises the freshest evidence (e.g. the
    /// active generation's timely share).
    Ledger {
        trace: u64,
        tenant: String,
        generations: u64,
        epochs: u64,
        detail: String,
    },
}

/// One committed op-log line.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Strictly increasing per log directory (resumes across restarts).
    pub seq: u64,
    /// Clock reading when the record was made (per-writer epoch).
    pub t_us: u64,
    pub kind: OpKind,
}

/// Renders a trace ID the way the op-log stores it.
pub fn trace_hex(trace: u64) -> String {
    format!("{trace:016x}")
}

fn parse_trace(s: &str) -> Result<u64, String> {
    if s.len() != 16 {
        return Err(format!("trace `{s}` is not 16 hex digits"));
    }
    u64::from_str_radix(s, 16).map_err(|e| format!("bad trace `{s}`: {e}"))
}

fn kv_str(out: &mut String, key: &str, val: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    json::write_str(out, val);
}

fn kv_u64(out: &mut String, key: &str, val: u64) {
    out.push_str(&format!(",\"{key}\":{val}"));
}

fn kv_f64(out: &mut String, key: &str, val: f64) {
    out.push_str(&format!(",\"{key}\":"));
    json::write_f64(out, val);
}

fn kv_bool(out: &mut String, key: &str, val: bool) {
    out.push_str(&format!(",\"{key}\":{val}"));
}

impl OpRecord {
    /// Canonical single-line serialization (no trailing newline). Field
    /// order is fixed, so `from_line(to_line(r)) == r` *and*
    /// `to_line(from_line(l)) == l` for every line this writer produced.
    pub fn to_line(&self) -> String {
        let mut o = String::with_capacity(160);
        o.push_str(&format!(
            "{{\"v\":{OPLOG_VERSION},\"seq\":{},\"t_us\":{},\"kind\":",
            self.seq, self.t_us
        ));
        match &self.kind {
            OpKind::ConnOpen { conn } => {
                o.push_str("\"conn_open\"");
                kv_u64(&mut o, "conn", *conn);
            }
            OpKind::ConnClose { conn } => {
                o.push_str("\"conn_close\"");
                kv_u64(&mut o, "conn", *conn);
            }
            OpKind::Span {
                trace,
                tenant,
                stage,
                start_us,
                dur_us,
            } => {
                o.push_str("\"span\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_str(&mut o, "stage", stage.name());
                kv_u64(&mut o, "start_us", *start_us);
                kv_u64(&mut o, "dur_us", *dur_us);
            }
            OpKind::Epoch {
                trace,
                tenant,
                label,
                outcome,
                detail,
            } => {
                o.push_str("\"epoch\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_str(&mut o, "label", label);
                kv_str(&mut o, "outcome", outcome.name());
                kv_str(&mut o, "detail", detail);
            }
            OpKind::Batch {
                jobs,
                tenants,
                queue_depth,
            } => {
                o.push_str("\"batch\"");
                kv_u64(&mut o, "jobs", *jobs);
                kv_u64(&mut o, "tenants", *tenants);
                kv_u64(&mut o, "queue_depth", *queue_depth);
            }
            OpKind::Drift {
                trace,
                tenant,
                label,
                max_tv,
                exceeded,
            } => {
                o.push_str("\"drift\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_str(&mut o, "label", label);
                kv_f64(&mut o, "max_tv", *max_tv);
                kv_bool(&mut o, "exceeded", *exceeded);
            }
            OpKind::Reopt {
                trace,
                tenant,
                outcome,
                generation,
                detail,
            } => {
                o.push_str("\"reopt\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_str(&mut o, "outcome", outcome.name());
                kv_u64(&mut o, "generation", *generation);
                kv_str(&mut o, "detail", detail);
            }
            OpKind::Swap {
                trace,
                tenant,
                generation,
                bytes,
                note,
            } => {
                o.push_str("\"swap\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_u64(&mut o, "generation", *generation);
                kv_u64(&mut o, "bytes", *bytes);
                kv_str(&mut o, "note", note);
            }
            OpKind::Rollback {
                tenant,
                from_gen,
                to_gen,
                note,
            } => {
                o.push_str("\"rollback\"");
                kv_str(&mut o, "tenant", tenant);
                kv_u64(&mut o, "from_gen", *from_gen);
                kv_u64(&mut o, "to_gen", *to_gen);
                kv_str(&mut o, "note", note);
            }
            OpKind::Ledger {
                trace,
                tenant,
                generations,
                epochs,
                detail,
            } => {
                o.push_str("\"ledger\"");
                kv_str(&mut o, "trace", &trace_hex(*trace));
                kv_str(&mut o, "tenant", tenant);
                kv_u64(&mut o, "generations", *generations);
                kv_u64(&mut o, "epochs", *epochs);
                kv_str(&mut o, "detail", detail);
            }
        }
        o.push('}');
        o
    }

    /// Parses and validates one line.
    pub fn from_line(line: &str) -> Result<OpRecord, String> {
        let j = json::parse(line)?;
        let v = j.u64_field("v")?;
        if v != OPLOG_VERSION {
            return Err(format!("unsupported op-log version {v}"));
        }
        let seq = j.u64_field("seq")?;
        let t_us = j.u64_field("t_us")?;
        let kind_name = j.str_field("kind")?;
        let trace = |j: &Json| -> Result<u64, String> { parse_trace(j.str_field("trace")?) };
        let owned =
            |j: &Json, key: &str| -> Result<String, String> { Ok(j.str_field(key)?.to_string()) };
        let kind = match kind_name {
            "conn_open" => OpKind::ConnOpen {
                conn: j.u64_field("conn")?,
            },
            "conn_close" => OpKind::ConnClose {
                conn: j.u64_field("conn")?,
            },
            "span" => OpKind::Span {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                stage: Stage::from_name(j.str_field("stage")?)
                    .ok_or_else(|| format!("unknown stage `{}`", j.str_field("stage").unwrap()))?,
                start_us: j.u64_field("start_us")?,
                dur_us: j.u64_field("dur_us")?,
            },
            "epoch" => OpKind::Epoch {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                label: owned(&j, "label")?,
                outcome: EpochOutcome::from_name(j.str_field("outcome")?).ok_or_else(|| {
                    format!(
                        "unknown epoch outcome `{}`",
                        j.str_field("outcome").unwrap()
                    )
                })?,
                detail: owned(&j, "detail")?,
            },
            "batch" => OpKind::Batch {
                jobs: j.u64_field("jobs")?,
                tenants: j.u64_field("tenants")?,
                queue_depth: j.u64_field("queue_depth")?,
            },
            "drift" => OpKind::Drift {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                label: owned(&j, "label")?,
                max_tv: j.num_field("max_tv")?,
                exceeded: j
                    .get("exceeded")
                    .and_then(Json::as_bool)
                    .ok_or("missing or non-boolean field `exceeded`")?,
            },
            "reopt" => OpKind::Reopt {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                outcome: ReoptOutcome::from_name(j.str_field("outcome")?).ok_or_else(|| {
                    format!(
                        "unknown reopt outcome `{}`",
                        j.str_field("outcome").unwrap()
                    )
                })?,
                generation: j.u64_field("generation")?,
                detail: owned(&j, "detail")?,
            },
            "swap" => OpKind::Swap {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                generation: j.u64_field("generation")?,
                bytes: j.u64_field("bytes")?,
                note: owned(&j, "note")?,
            },
            "rollback" => OpKind::Rollback {
                tenant: owned(&j, "tenant")?,
                from_gen: j.u64_field("from_gen")?,
                to_gen: j.u64_field("to_gen")?,
                note: owned(&j, "note")?,
            },
            "ledger" => OpKind::Ledger {
                trace: trace(&j)?,
                tenant: owned(&j, "tenant")?,
                generations: j.u64_field("generations")?,
                epochs: j.u64_field("epochs")?,
                detail: owned(&j, "detail")?,
            },
            other => return Err(format!("unknown op-log kind `{other}`")),
        };
        Ok(OpRecord { seq, t_us, kind })
    }
}

/// Where and how the op-log writes.
#[derive(Debug, Clone)]
pub struct OpLogConfig {
    /// Directory holding `oplog.jsonl` plus rotated `oplog.NNNNN.jsonl`.
    pub dir: PathBuf,
    /// Rotate the active file once it reaches this many bytes.
    pub max_file_bytes: u64,
}

impl OpLogConfig {
    pub fn new(dir: impl Into<PathBuf>) -> OpLogConfig {
        OpLogConfig {
            dir: dir.into(),
            max_file_bytes: DEFAULT_MAX_FILE_BYTES,
        }
    }
}

#[derive(Debug)]
struct WriterState {
    file: File,
    written: u64,
    seq: u64,
    next_rotation: u64,
}

/// Appends records to a log directory; thread-safe (one mutex — the
/// op-log is off the commit hot path, every append is one small write).
#[derive(Debug)]
pub struct OpLogWriter {
    cfg: OpLogConfig,
    state: Mutex<WriterState>,
}

impl OpLogWriter {
    /// Opens (creating if necessary) a log directory, resuming the
    /// sequence number and rotation index from whatever is already
    /// there, and truncating a torn final line so appends stay valid.
    pub fn open(cfg: OpLogConfig) -> io::Result<OpLogWriter> {
        fs::create_dir_all(&cfg.dir)?;
        let next_rotation = rotated_files(&cfg.dir)?
            .last()
            .map_or(1, |(idx, _)| idx + 1);
        let existing = read_oplog_dir(&cfg.dir)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("op-log: {e}")))?;
        let seq = existing.last().map_or(0, |r| r.seq);

        let active = cfg.dir.join(ACTIVE_FILE);
        let mut written = 0u64;
        if let Ok(bytes) = fs::read(&active) {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            if keep != bytes.len() {
                let f = OpenOptions::new().write(true).open(&active)?;
                f.set_len(keep as u64)?;
            }
            written = keep as u64;
        }
        let file = OpenOptions::new().create(true).append(true).open(&active)?;
        Ok(OpLogWriter {
            cfg,
            state: Mutex::new(WriterState {
                file,
                written,
                seq,
                next_rotation,
            }),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Appends one record (sequence number assigned here), rotating the
    /// active file afterwards if it crossed the size cap. Returns the
    /// record as committed.
    pub fn append(&self, t_us: u64, kind: OpKind) -> io::Result<OpRecord> {
        let mut st = self.state.lock().unwrap();
        st.seq += 1;
        let rec = OpRecord {
            seq: st.seq,
            t_us,
            kind,
        };
        let mut line = rec.to_line();
        line.push('\n');
        st.file.write_all(line.as_bytes())?;
        st.written += line.len() as u64;
        if st.written >= self.cfg.max_file_bytes {
            let rotated = self
                .cfg
                .dir
                .join(format!("oplog.{:05}.jsonl", st.next_rotation));
            fs::rename(self.cfg.dir.join(ACTIVE_FILE), rotated)?;
            st.next_rotation += 1;
            st.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.cfg.dir.join(ACTIVE_FILE))?;
            st.written = 0;
        }
        Ok(rec)
    }
}

/// Rotated files as `(index, path)`, sorted by index.
fn rotated_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("oplog.")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Reads and validates a whole log directory: rotated files in index
/// order, then the active file. Every line must parse and sequence
/// numbers must be strictly increasing; the only tolerated damage is a
/// torn (newline-less) final line, which is dropped on any file — a
/// crash can tear the active file mid-append, and a crash racing
/// rotation can leave the same tear on a just-rotated file. A missing
/// directory reads as an empty log.
pub fn read_oplog_dir(dir: &Path) -> Result<Vec<OpRecord>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut files: Vec<PathBuf> = rotated_files(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    let active = dir.join(ACTIVE_FILE);
    if active.exists() {
        files.push(active);
    }
    let mut out = Vec::new();
    let mut prev_seq = 0u64;
    for path in files.iter() {
        let bytes = fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let torn_tail = bytes.last().is_some_and(|&b| b != b'\n');
        // Split at the last newline on BYTES before UTF-8 validation: a
        // torn tail may end mid-character and must not poison the
        // complete lines before it.
        let keep = if torn_tail {
            bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1)
        } else {
            bytes.len()
        };
        let complete = std::str::from_utf8(&bytes[..keep])
            .map_err(|e| format!("{}: not UTF-8: {e}", path.display()))?;
        for (li, line) in complete.lines().enumerate() {
            let rec = OpRecord::from_line(line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), li + 1))?;
            if rec.seq <= prev_seq {
                return Err(format!(
                    "{} line {}: sequence {} does not advance past {prev_seq}",
                    path.display(),
                    li + 1,
                    rec.seq
                ));
            }
            prev_seq = rec.seq;
            out.push(rec);
        }
    }
    Ok(out)
}

/// The daemon's observability bundle: the injected clock plus an
/// optional op-log writer. Disabled (no writer) recording is a branch.
pub struct Obs {
    clock: Arc<dyn Clock>,
    writer: Option<OpLogWriter>,
}

impl Obs {
    /// An `Obs` over `clock`, writing to `oplog` when given.
    pub fn new(clock: Arc<dyn Clock>, oplog: Option<OpLogConfig>) -> io::Result<Obs> {
        let writer = match oplog {
            Some(cfg) => Some(OpLogWriter::open(cfg)?),
            None => None,
        };
        Ok(Obs { clock, writer })
    }

    /// No op-log, monotonic clock (the non-observed default).
    pub fn disabled() -> Obs {
        Obs {
            clock: Arc::new(MonotonicClock::new()),
            writer: None,
        }
    }

    /// True when records actually land on disk.
    pub fn is_enabled(&self) -> bool {
        self.writer.is_some()
    }

    /// Current clock reading.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Records `kind` stamped with the current clock reading.
    pub fn record(&self, kind: OpKind) {
        let t = self.now_us();
        self.record_at(t, kind);
    }

    /// Records `kind` at an explicit timestamp (spans use their start).
    /// Append failures are reported, never propagated: losing an op-log
    /// line must not fail an upload.
    pub fn record_at(&self, t_us: u64, kind: OpKind) {
        if let Some(w) = &self.writer {
            if let Err(e) = w.append(t_us, kind) {
                eprintln!("serve: op-log append failed: {e}");
            }
        }
    }

    /// Closes a stage span opened at `start_us`: records it and returns
    /// its duration (for the per-stage latency histogram).
    pub fn span(&self, trace: u64, tenant: &str, stage: Stage, start_us: u64) -> u64 {
        let dur_us = self.now_us().saturating_sub(start_us);
        self.record_at(
            start_us,
            OpKind::Span {
                trace,
                tenant: tenant.to_string(),
                stage,
                start_us,
                dur_us,
            },
        );
        dur_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_selfprof::FakeClock;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apt-oplog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_kinds() -> Vec<OpKind> {
        vec![
            OpKind::ConnOpen { conn: 1 },
            OpKind::Span {
                trace: 0xA1,
                tenant: "BFS".into(),
                stage: Stage::Parse,
                start_us: 10,
                dur_us: 5,
            },
            OpKind::Epoch {
                trace: 0xA1,
                tenant: "BFS".into(),
                label: "epoch \"quoted\"\n".into(),
                outcome: EpochOutcome::Accepted,
                detail: String::new(),
            },
            OpKind::Batch {
                jobs: 3,
                tenants: 2,
                queue_depth: 1,
            },
            OpKind::Drift {
                trace: 0xA1,
                tenant: "BFS".into(),
                label: "e2".into(),
                max_tv: 0.4375,
                exceeded: true,
            },
            OpKind::Reopt {
                trace: 0xA1,
                tenant: "BFS".into(),
                outcome: ReoptOutcome::Swapped,
                generation: 1,
                detail: "drift".into(),
            },
            OpKind::Swap {
                trace: 0xA1,
                tenant: "BFS".into(),
                generation: 1,
                bytes: 64,
                note: "drift max_tv=0.4375".into(),
            },
            OpKind::Rollback {
                tenant: "BFS".into(),
                from_gen: 2,
                to_gen: 1,
                note: "operator".into(),
            },
            OpKind::Ledger {
                trace: 0xA1,
                tenant: "BFS".into(),
                generations: 3,
                epochs: 7,
                detail: "gen 2 timely 0.1250".into(),
            },
            OpKind::ConnClose { conn: 1 },
        ]
    }

    #[test]
    fn every_kind_round_trips_byte_identically() {
        for (i, kind) in sample_kinds().into_iter().enumerate() {
            let rec = OpRecord {
                seq: i as u64 + 1,
                t_us: 100 + i as u64,
                kind,
            };
            let line = rec.to_line();
            let back = OpRecord::from_line(&line).expect("parses");
            assert_eq!(back, rec, "{line}");
            assert_eq!(back.to_line(), line, "canonical re-serialization");
        }
    }

    #[test]
    fn parser_rejects_bad_lines() {
        for bad in [
            "",
            "{",
            "{\"v\":2,\"seq\":1,\"t_us\":0,\"kind\":\"batch\",\"jobs\":1,\"tenants\":1,\"queue_depth\":0}",
            "{\"v\":1,\"seq\":1,\"t_us\":0,\"kind\":\"mystery\"}",
            "{\"v\":1,\"seq\":1,\"t_us\":0,\"kind\":\"conn_open\"}",
            "{\"v\":1,\"seq\":1,\"t_us\":0,\"kind\":\"span\",\"trace\":\"xyz\",\"tenant\":\"t\",\"stage\":\"parse\",\"start_us\":0,\"dur_us\":0}",
        ] {
            assert!(OpRecord::from_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn writer_rotates_and_reader_reassembles() {
        let dir = tmp("rotate");
        let cfg = OpLogConfig {
            dir: dir.clone(),
            max_file_bytes: 120,
        };
        let w = OpLogWriter::open(cfg).unwrap();
        let clock = FakeClock::new(7);
        let mut expect = Vec::new();
        for i in 0..10u64 {
            expect.push(
                w.append(clock.now_us(), OpKind::ConnOpen { conn: i })
                    .unwrap(),
            );
        }
        assert!(
            dir.join("oplog.00001.jsonl").exists(),
            "cap must have forced at least one rotation"
        );
        let read = read_oplog_dir(&dir).unwrap();
        assert_eq!(read, expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_writer_resumes_sequence_and_rotation() {
        let dir = tmp("resume");
        let cfg = OpLogConfig {
            dir: dir.clone(),
            max_file_bytes: 100,
        };
        {
            let w = OpLogWriter::open(cfg.clone()).unwrap();
            for i in 0..4u64 {
                w.append(i, OpKind::ConnOpen { conn: i }).unwrap();
            }
        }
        let w = OpLogWriter::open(cfg).unwrap();
        let rec = w.append(99, OpKind::ConnClose { conn: 0 }).unwrap();
        assert_eq!(rec.seq, 5, "sequence resumes, never restarts");
        assert_eq!(read_oplog_dir(&dir).unwrap().len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_on_read_and_truncated_on_reopen() {
        let dir = tmp("torn");
        let cfg = OpLogConfig::new(&dir);
        {
            let w = OpLogWriter::open(cfg.clone()).unwrap();
            w.append(1, OpKind::ConnOpen { conn: 1 }).unwrap();
            w.append(2, OpKind::ConnOpen { conn: 2 }).unwrap();
        }
        // Crash mid-append: a partial line with no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(ACTIVE_FILE))
            .unwrap();
        f.write_all(b"{\"v\":1,\"seq\":3,\"t_us\":9,\"ki").unwrap();
        drop(f);
        let read = read_oplog_dir(&dir).unwrap();
        assert_eq!(read.len(), 2, "torn tail dropped, complete lines kept");

        // Reopening truncates the tail so the next append stays valid.
        let w = OpLogWriter::open(cfg).unwrap();
        w.append(10, OpKind::ConnClose { conn: 1 }).unwrap();
        let read = read_oplog_dir(&dir).unwrap();
        assert_eq!(read.len(), 3);
        assert_eq!(read.last().unwrap().seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_on_a_rotated_file_is_dropped_not_an_error() {
        // A crash racing rotation can tear the final line of the file
        // that was just renamed; the reader keeps the complete lines
        // (mirroring the shard store's orphan-temp sweep posture).
        let dir = tmp("torn-rotated");
        fs::create_dir_all(&dir).unwrap();
        let whole = OpRecord {
            seq: 1,
            t_us: 1,
            kind: OpKind::ConnOpen { conn: 1 },
        };
        fs::write(
            dir.join("oplog.00001.jsonl"),
            format!("{}\n{{\"v\":1,\"seq\":2,\"t_us\":9,\"ki", whole.to_line()),
        )
        .unwrap();
        let next = OpRecord {
            seq: 3,
            t_us: 3,
            kind: OpKind::ConnClose { conn: 1 },
        };
        fs::write(dir.join(ACTIVE_FILE), format!("{}\n", next.to_line())).unwrap();
        let read = read_oplog_dir(&dir).unwrap();
        assert_eq!(read, vec![whole, next]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_complete_lines_are_errors() {
        let dir = tmp("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(ACTIVE_FILE), "not json\n").unwrap();
        assert!(read_oplog_dir(&dir).unwrap_err().contains("line 1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_reads_empty() {
        let dir = tmp("missing");
        assert_eq!(read_oplog_dir(&dir).unwrap(), Vec::new());
    }

    #[test]
    fn obs_span_records_start_and_duration() {
        let dir = tmp("obs");
        let clock = Arc::new(FakeClock::new(3));
        let obs = Obs::new(clock, Some(OpLogConfig::new(&dir))).unwrap();
        let start = obs.now_us(); // 0
        let dur = obs.span(0xBEEF, "t", Stage::Commit, start); // now 3 → dur 3
        assert_eq!(dur, 3);
        let read = read_oplog_dir(&dir).unwrap();
        assert_eq!(
            read[0].kind,
            OpKind::Span {
                trace: 0xBEEF,
                tenant: "t".into(),
                stage: Stage::Commit,
                start_us: 0,
                dur_us: 3,
            }
        );
        assert_eq!(read[0].t_us, 0, "spans are stamped at their start");
        let _ = fs::remove_dir_all(&dir);
    }
}
