//! The reoptimization daemon: TCP acceptor, per-connection upload
//! handlers, and the single committer thread, wired together.
//!
//! Thread layout (all std, no async runtime — the workspace is
//! offline):
//!
//! ```text
//! acceptor ──spawns──▶ handler (one per connection)
//!                        │  parse upload body (streaming, no disk)
//!                        ▼
//!                  mpsc::Sender<Job> ──▶ committer (single writer)
//!                        ▲                   │ shard write, drift,
//!                        └── per-job reply ◀─┘ reoptimize + hot-swap
//! ```
//!
//! The acceptor polls a non-blocking listener (the
//! [`apt_metrics::MetricsServer`] pattern: 25 ms sleep, shared stop
//! flag) so shutdown never hangs in `accept`. Handlers parse
//! concurrently but only the committer touches shard files — see
//! [`crate::batch`] for why that single-writer discipline matters.

use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apt_ingest::{AggregateProfile, DriftConfig, GenTag, IdentityRemap};
use apt_metrics::{json, Registry};
use apt_selfprof::{Clock, MonotonicClock};

use crate::batch::{Committer, Job, Reoptimizer};
use crate::efficacy::EfficacyLedger;
use crate::metrics::{QueueDepth, ServeMetrics};
use crate::oplog::{Obs, OpKind, OpLogConfig, Stage};
use crate::protocol::{self, UploadReply};
use crate::shard::ShardStore;
use crate::swap::CURRENT_HINTS;

/// Poll interval for the non-blocking acceptor and the between-frames
/// idle wait on handler sockets.
const POLL: Duration = Duration::from_millis(25);
/// Read/write timeout while a frame is in flight.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// Daemon configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Per-tenant shard directory.
    pub db_dir: PathBuf,
    /// Per-tenant hint hot-swap directory.
    pub hints_dir: PathBuf,
    /// Drift-detection tunables.
    pub drift: DriftConfig,
    /// `DriftReport::exceeds` threshold that triggers reoptimization.
    pub reopt_threshold: f64,
    /// Epochs kept per shard (0 = unlimited).
    pub epoch_cap: usize,
    /// Upload body byte cap.
    pub max_body: u64,
    /// Metrics registry ([`Registry::disabled`] for none).
    pub registry: Registry,
    /// Time source for op-log timestamps and request spans (tests
    /// inject a [`apt_selfprof::FakeClock`] for byte-stable logs).
    pub clock: Arc<dyn Clock>,
    /// Op-log destination (`None` disables the op-log).
    pub oplog: Option<OpLogConfig>,
    /// Committer queue depth at which `serve-status` reports a backlog
    /// warning (0 disables the warning).
    pub queue_warn: u64,
    /// Outcome epochs the active hint generation needs on the efficacy
    /// ledger before the regression policy may judge it (0 disables
    /// auto-rollback).
    pub efficacy_window: u64,
    /// How far the active generation's timely share may trail an
    /// earlier evidenced generation before it is rolled back.
    pub efficacy_threshold: f64,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("db_dir", &self.db_dir)
            .field("hints_dir", &self.hints_dir)
            .field("drift", &self.drift)
            .field("reopt_threshold", &self.reopt_threshold)
            .field("epoch_cap", &self.epoch_cap)
            .field("max_body", &self.max_body)
            .field("oplog", &self.oplog)
            .field("queue_warn", &self.queue_warn)
            .field("efficacy_window", &self.efficacy_window)
            .field("efficacy_threshold", &self.efficacy_threshold)
            .finish_non_exhaustive()
    }
}

impl ServeConfig {
    /// A config with the default tunables.
    pub fn new(
        addr: impl Into<String>,
        db_dir: impl Into<PathBuf>,
        hints_dir: impl Into<PathBuf>,
    ) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            db_dir: db_dir.into(),
            hints_dir: hints_dir.into(),
            drift: DriftConfig::default(),
            reopt_threshold: 0.35,
            epoch_cap: 0,
            max_body: protocol::DEFAULT_MAX_BODY,
            registry: Registry::disabled(),
            clock: Arc::new(MonotonicClock::new()),
            oplog: None,
            queue_warn: 64,
            efficacy_window: 3,
            efficacy_threshold: 0.2,
        }
    }
}

/// Read-only state every handler shares.
struct Shared {
    store: ShardStore,
    hints_dir: PathBuf,
    metrics: ServeMetrics,
    max_body: u64,
    obs: Arc<Obs>,
    queue: QueueDepth,
    queue_warn: u64,
    conn_seq: AtomicU64,
}

/// A running daemon. Dropping it shuts everything down.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    committer: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listen socket, starts the committer and acceptor
    /// threads, and returns immediately.
    pub fn start(config: ServeConfig, reopt: Arc<dyn Reoptimizer>) -> io::Result<Daemon> {
        let store = ShardStore::open(&config.db_dir)?;
        let metrics = ServeMetrics::new(&config.registry);
        let obs = Arc::new(Obs::new(Arc::clone(&config.clock), config.oplog.clone())?);
        let queue = QueueDepth::new(&metrics);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let committer = Committer {
            store: store.clone(),
            hints_dir: config.hints_dir.clone(),
            drift: config.drift,
            reopt_threshold: config.reopt_threshold,
            epoch_cap: config.epoch_cap,
            metrics: metrics.clone(),
            reopt,
            obs: Arc::clone(&obs),
            queue: queue.clone(),
            efficacy_window: config.efficacy_window,
            efficacy_threshold: config.efficacy_threshold,
        };
        let committer_handle = std::thread::Builder::new()
            .name("apt-serve-commit".to_string())
            .spawn(move || committer.run(&jobs_rx))
            .expect("spawn committer");

        let shared = Arc::new(Shared {
            store,
            hints_dir: config.hints_dir,
            metrics,
            max_body: config.max_body,
            obs,
            queue,
            queue_warn: config.queue_warn,
            conn_seq: AtomicU64::new(0),
        });
        let stop2 = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("apt-serve-accept".to_string())
            .spawn(move || {
                let mut handlers = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            shared.metrics.connections.inc();
                            let shared = Arc::clone(&shared);
                            let stop = Arc::clone(&stop2);
                            let jobs = jobs_tx.clone();
                            let handle = std::thread::Builder::new()
                                .name("apt-serve-conn".to_string())
                                .spawn(move || {
                                    let _ = handle_connection(stream, &shared, &stop, &jobs);
                                })
                                .expect("spawn connection handler");
                            handlers.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
                for handle in handlers {
                    let _ = handle.join();
                }
                // `jobs_tx` drops here; with every handler joined the
                // committer's channel closes and it drains out.
            })
            .expect("spawn acceptor");

        Ok(Daemon {
            addr,
            stop,
            acceptor: Some(acceptor),
            committer: Some(committer_handle),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight uploads to commit, and
    /// joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One connection: hello, then request frames until EOF or shutdown.
/// Assigns the connection number and brackets the frame loop with
/// op-log open/close records on every exit path.
fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    stop: &AtomicBool,
    jobs: &Sender<Job>,
) -> io::Result<()> {
    let conn = shared.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
    shared.obs.record(OpKind::ConnOpen { conn });
    let result = serve_connection(stream, shared, stop, jobs, conn);
    shared.obs.record(OpKind::ConnClose { conn });
    result
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    stop: &AtomicBool,
    jobs: &Sender<Job>,
    conn: u64,
) -> io::Result<()> {
    // Replies are tiny; Nagle+delayed-ACK would add ~40 ms per frame.
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(FRAME_TIMEOUT))?;
    stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
    let mut hello = [0u8; 8];
    (&stream).read_exact(&mut hello)?;
    if &hello != protocol::HELLO {
        shared.metrics.errors.inc();
        let _ = protocol::write_error(&mut (&stream), "bad hello: this is an APTS1 endpoint");
        return Ok(());
    }
    let mut upload_seq = 0u64;
    loop {
        // Idle between frames: short timeout so shutdown is noticed.
        stream.set_read_timeout(Some(POLL))?;
        let kind = match wait_for_kind(&stream, stop)? {
            Some(k) => k,
            None => return Ok(()),
        };
        stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
        match kind {
            protocol::KIND_UPLOAD => {
                handle_upload(&stream, shared, jobs, conn, &mut upload_seq, None)?
            }
            protocol::KIND_UPLOAD_TRACED => {
                let trace = protocol::read_trace_id(&mut (&stream))?;
                handle_upload(&stream, shared, jobs, conn, &mut upload_seq, Some(trace))?
            }
            protocol::KIND_STATUS => handle_status(&stream, shared, false)?,
            protocol::KIND_STATUS_JSON => handle_status(&stream, shared, true)?,
            other => {
                // Unknown kind: the stream is desynchronised, close.
                shared.metrics.errors.inc();
                let _ =
                    protocol::write_error(&mut (&stream), &format!("unknown request kind {other}"));
                return Ok(());
            }
        }
    }
}

/// Polls for the next request's kind byte; `None` on clean EOF or
/// shutdown.
fn wait_for_kind(stream: &TcpStream, stop: &AtomicBool) -> io::Result<Option<u8>> {
    let mut b = [0u8; 1];
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match (&*stream).read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// One UPLOAD frame: stream-parse the body, hand the aggregate to the
/// committer, relay its verdict. `client_trace` is `Some` for kind-3
/// frames (the traced reply framing echoes the effective trace ID);
/// either way the upload gets a trace — `(conn << 16) | upload_seq`
/// when the client did not pick one — so kind-1 uploads still leave a
/// full span chain in the op-log.
fn handle_upload(
    stream: &TcpStream,
    shared: &Shared,
    jobs: &Sender<Job>,
    conn: u64,
    upload_seq: &mut u64,
    client_trace: Option<u64>,
) -> io::Result<()> {
    apt_selfprof::prof_scope!("serve/upload");
    let received = Instant::now();
    *upload_seq += 1;
    let trace = match client_trace {
        Some(t) if t != 0 => t,
        _ => (conn << 16) | *upload_seq,
    };
    let header = match protocol::read_upload_header(&mut (&*stream), shared.max_body) {
        Ok(h) => h,
        Err(e) => {
            // Without a trusted body length the stream cannot be
            // resynchronised; report and close.
            shared.metrics.errors.inc();
            let _ = protocol::write_error(&mut (&*stream), &format!("bad upload header: {e}"));
            return Err(e);
        }
    };

    // The body streams straight off the socket into the incremental
    // parser — a 64 MiB dump never materialises in memory.
    let parse_start = shared.obs.now_us();
    let mut body = stream.take(header.body_len);
    let parsed = apt_ingest::parse_reader(BufReader::new(&mut body), &IdentityRemap);
    // On a parse error the body's tail is still on the wire; drain it
    // so the connection stays frame-aligned for the next request.
    io::copy(&mut body, &mut io::sink())?;
    shared.metrics.body_bytes.add(header.body_len);

    let ingested = match parsed {
        Ok(i) => i,
        Err(e) => {
            shared.metrics.errors.inc();
            return protocol::write_error(&mut (&*stream), &format!("parse failed: {e}"));
        }
    };
    let parse_dur = shared
        .obs
        .span(trace, &header.tenant, Stage::Parse, parse_start);
    shared.metrics.stage_latency("parse").observe(parse_dur);
    let mut agg = AggregateProfile::from_profile(&ingested.profile, &ingested.stats_or_default());
    // Outcome feedback rides the dump's comment headers: the hint
    // generation tag and per-PC prefetch outcomes survive onto the
    // aggregate so the committer can segment the efficacy ledger.
    agg.gen = match ingested.generation {
        Some(g) => GenTag::Gen(g),
        None => GenTag::Untagged,
    };
    agg.pf_outcomes = ingested.outcomes;
    let events = ingested.events as u64;

    let (reply_tx, reply_rx) = mpsc::channel();
    let enqueued_us = shared.obs.now_us();
    shared.queue.enter();
    let job = Job {
        tenant: header.tenant,
        label: header.label,
        agg,
        events,
        received,
        trace,
        enqueued_us,
        reply: reply_tx,
    };
    if jobs.send(job).is_err() {
        shared.queue.exit_n(1);
        shared.metrics.errors.inc();
        return protocol::write_error(&mut (&*stream), "daemon is shutting down");
    }
    match reply_rx.recv() {
        Ok(Ok(accepted)) => {
            let message = format!(
                "committed: shard has {} epoch(s), drift max_tv={:.4}{}",
                accepted.shard_epochs,
                accepted.max_tv,
                if accepted.drifted {
                    " (exceeds threshold)"
                } else {
                    ""
                },
            );
            let reply = UploadReply {
                events,
                shard_epochs: accepted.shard_epochs,
                drifted: accepted.drifted,
                max_tv: accepted.max_tv,
                generation: accepted.generation,
                // The live committer backlog at reply time, so clients
                // can pace themselves (see `client::backlog_warning`).
                queue_depth: shared.queue.depth(),
                message,
                trace,
            };
            if client_trace.is_some() {
                protocol::write_upload_reply_traced(&mut (&*stream), &reply)
            } else {
                protocol::write_upload_reply(&mut (&*stream), &reply)
            }
        }
        Ok(Err(reason)) => protocol::write_error(&mut (&*stream), &reason),
        Err(_) => protocol::write_error(&mut (&*stream), "commit pipeline hung up"),
    }
}

/// One STATUS (or STATUS_JSON) frame: a read-only report on a tenant's
/// shard, hints and efficacy ledger.
fn handle_status(stream: &TcpStream, shared: &Shared, as_json: bool) -> io::Result<()> {
    let tenant = protocol::read_str(&mut (&*stream), protocol::MAX_TENANT, "tenant")?;
    if !protocol::valid_tenant(&tenant) {
        shared.metrics.errors.inc();
        return protocol::write_error(&mut (&*stream), &format!("invalid tenant `{tenant}`"));
    }
    // The backlog warning rides the live queue depth, never the shard,
    // so `status_text`/`status_json` stay pure functions of shard +
    // hints + ledger (the arrival-order determinism contract) and an
    // idle daemon never prints it.
    let warning = backlog_warning(shared.queue.depth(), shared.queue_warn);
    let report = if as_json {
        status_json(
            &shared.store,
            &shared.hints_dir,
            &tenant,
            warning.as_deref(),
        )
    } else {
        let mut text = status_text(&shared.store, &shared.hints_dir, &tenant);
        if let Some(warning) = warning {
            text.push_str(&warning);
        }
        text
    };
    protocol::write_status_reply(&mut (&*stream), &report)
}

/// The `serve-status` backlog warning line, or `None` while the
/// committer keeps up (or warnings are disabled with `queue_warn` 0).
pub fn backlog_warning(depth: u64, queue_warn: u64) -> Option<String> {
    (queue_warn > 0 && depth >= queue_warn).then(|| {
        format!("warning: committer queue depth {depth} >= {queue_warn} (ingest backlogged)\n")
    })
}

/// Renders a tenant's status. Deliberately excludes timestamps: the
/// text is a pure function of the shard contents, hint presence and
/// efficacy ledger, so any upload interleaving that produces the same
/// on-disk state produces the same report.
pub fn status_text(store: &ShardStore, hints_dir: &std::path::Path, tenant: &str) -> String {
    let db = store.load(tenant);
    let hints_active = hints_dir.join(tenant).join(CURRENT_HINTS).exists();
    let mut out = format!(
        "tenant {tenant}: {} epoch(s), hints {}\n",
        db.epochs.len(),
        if hints_active { "active" } else { "absent" },
    );
    for e in &db.epochs {
        out.push_str(&format!(
            "  {}: {} lbr snapshot(s), {} pebs sample(s), {} instructions\n",
            e.label, e.agg.lbr_snapshots, e.agg.pebs_samples, e.agg.instructions,
        ));
    }
    // The efficacy summary appears only once a ledger exists, so
    // pre-feedback deployments render exactly the historical report.
    let ledger = EfficacyLedger::load_or_empty(EfficacyLedger::path(store.dir(), tenant));
    out.push_str(&ledger.render_status());
    out
}

/// [`status_text`]'s machine-readable sibling: the same pure function
/// of shard + hints + ledger, hand-rolled through the in-repo JSON
/// writer primitives so the output parses back with
/// [`apt_metrics::json::parse`]. `warning` (the live backlog warning,
/// when any) is the only non-pure field and is injected by the caller.
pub fn status_json(
    store: &ShardStore,
    hints_dir: &std::path::Path,
    tenant: &str,
    warning: Option<&str>,
) -> String {
    let db = store.load(tenant);
    let hints_active = hints_dir.join(tenant).join(CURRENT_HINTS).exists();
    let ledger = EfficacyLedger::load_or_empty(EfficacyLedger::path(store.dir(), tenant));
    let mut o = String::from("{\"tenant\":");
    json::write_str(&mut o, tenant);
    o.push_str(&format!(
        ",\"epochs\":{},\"hints_active\":{hints_active},\"epoch_list\":[",
        db.epochs.len()
    ));
    for (i, e) in db.epochs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"label\":");
        json::write_str(&mut o, &e.label);
        o.push_str(&format!(
            ",\"lbr_snapshots\":{},\"pebs_samples\":{},\"instructions\":{}}}",
            e.agg.lbr_snapshots, e.agg.pebs_samples, e.agg.instructions
        ));
    }
    o.push_str("],\"efficacy\":[");
    for (i, (gen, g)) in ledger.generations.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "{{\"generation\":{gen},\"epochs\":{},\"rolled_back\":{}",
            g.epochs, g.rolled_back
        ));
        if let Some(share) = g.timely_share() {
            o.push_str(",\"timely_share\":");
            json::write_f64(&mut o, share);
            o.push_str(",\"residual_cycles\":");
            json::write_f64(&mut o, g.residual_cycles());
        }
        if let Some(ipc) = g.ipc() {
            o.push_str(",\"ipc\":");
            json::write_f64(&mut o, ipc);
        }
        o.push('}');
    }
    o.push(']');
    if let Some(w) = warning {
        o.push_str(",\"warning\":");
        json::write_str(&mut o, w.trim_end_matches('\n'));
    }
    o.push_str("}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_text_is_a_function_of_shard_and_hints() {
        let root = std::env::temp_dir().join(format!("apt-daemon-status-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ShardStore::open(root.join("db")).unwrap();
        let hints = root.join("hints");

        let empty = status_text(&store, &hints, "BFS");
        assert_eq!(empty, "tenant BFS: 0 epoch(s), hints absent\n");

        store
            .apply(
                "BFS",
                vec![apt_ingest::Epoch {
                    label: "e1".into(),
                    agg: AggregateProfile {
                        instructions: 42,
                        lbr_snapshots: 2,
                        pebs_samples: 3,
                        ..AggregateProfile::default()
                    },
                }],
                0,
            )
            .unwrap();
        std::fs::create_dir_all(hints.join("BFS")).unwrap();
        std::fs::write(hints.join("BFS").join(CURRENT_HINTS), b"h").unwrap();
        let text = status_text(&store, &hints, "BFS");
        assert_eq!(
            text,
            "tenant BFS: 1 epoch(s), hints active\n  e1: 2 lbr snapshot(s), 3 pebs sample(s), 42 instructions\n"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn status_json_round_trips_through_the_in_repo_parser() {
        let root = std::env::temp_dir().join(format!("apt-daemon-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ShardStore::open(root.join("db")).unwrap();
        let hints = root.join("hints");
        store
            .apply(
                "BFS",
                vec![apt_ingest::Epoch {
                    label: "e1".into(),
                    agg: AggregateProfile {
                        instructions: 42,
                        lbr_snapshots: 2,
                        pebs_samples: 3,
                        ..AggregateProfile::default()
                    },
                }],
                0,
            )
            .unwrap();
        let mut ledger = EfficacyLedger::default();
        ledger.record_epoch(
            1,
            &AggregateProfile {
                instructions: 1000,
                cycles: 2000,
                pf_outcomes: [(
                    0x400100u64,
                    apt_trace::PcOutcomes {
                        issued: 16,
                        timely: 12,
                        late: 4,
                        timely_slack_cycles: 1200,
                        late_head_start_cycles: 120,
                        ..apt_trace::PcOutcomes::default()
                    },
                )]
                .into_iter()
                .collect(),
                ..AggregateProfile::default()
            },
        );
        ledger
            .save(EfficacyLedger::path(store.dir(), "BFS"))
            .unwrap();

        let text = status_json(&store, &hints, "BFS", Some("warning: backlogged\n"));
        let j = json::parse(&text).expect("status json parses");
        assert_eq!(j.str_field("tenant").unwrap(), "BFS");
        assert_eq!(j.u64_field("epochs").unwrap(), 1);
        assert_eq!(
            j.get("hints_active").and_then(json::Json::as_bool),
            Some(false)
        );
        let list = j.get("epoch_list").and_then(json::Json::as_arr).unwrap();
        assert_eq!(list[0].str_field("label").unwrap(), "e1");
        assert_eq!(list[0].u64_field("instructions").unwrap(), 42);
        let eff = j.get("efficacy").and_then(json::Json::as_arr).unwrap();
        assert_eq!(eff[0].u64_field("generation").unwrap(), 1);
        assert_eq!(eff[0].num_field("timely_share").unwrap(), 0.75);
        assert_eq!(j.str_field("warning").unwrap(), "warning: backlogged");
        // Without a warning the field is absent and the bytes are a pure
        // function of the on-disk state.
        let bare = status_json(&store, &hints, "BFS", None);
        assert!(json::parse(&bare).unwrap().get("warning").is_none());
        assert_eq!(bare, status_json(&store, &hints, "BFS", None));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backlog_warning_fires_only_at_or_past_the_threshold() {
        assert_eq!(backlog_warning(0, 64), None);
        assert_eq!(backlog_warning(63, 64), None);
        assert_eq!(
            backlog_warning(64, 64).as_deref(),
            Some("warning: committer queue depth 64 >= 64 (ingest backlogged)\n")
        );
        assert!(backlog_warning(1000, 64).is_some());
        // queue_warn 0 disables the warning outright.
        assert_eq!(backlog_warning(1000, 0), None);
    }
}
