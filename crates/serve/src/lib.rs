//! # apt-serve
//!
//! The adaptive reoptimization daemon: continuous profile ingest with
//! automatic hint re-derivation, closing the paper's deployment loop
//! (§3.6). Production machines keep profiling; dumps stream to this
//! daemon; when a workload's latency distributions drift far enough
//! that the deployed prefetch distances are stale (Eq. 1 moved), the
//! hint file is re-derived from the accumulated history and hot-swapped
//! atomically for the next process launch to pick up.
//!
//! * [`protocol`] — the `APTS1` wire format: length-prefixed streamed
//!   uploads, hard caps on every length field.
//! * [`shard`] — per-tenant `APTDB1` shard files with canonical
//!   (label-sorted) epoch order, so any upload interleaving yields
//!   byte-identical shards.
//! * [`batch`] — the single committer thread: one shard write per
//!   tenant per batch, post-commit drift detection, reoptimization.
//! * [`swap`] — generation-numbered atomic hint hot-swap with rollback
//!   and an append-only audit log.
//! * [`daemon`] — acceptor + per-connection handlers; upload bodies go
//!   straight from the socket into the streaming parser.
//! * [`client`] — the blocking upload/status client the CLI wraps.
//! * [`metrics`] — per-tenant counters, queue-depth gauges, per-stage
//!   latency histograms on the shared registry / `/metrics` endpoint.
//! * [`oplog`] — the structured, versioned JSONL op-log: per-request
//!   stage spans under a trace ID plus every lifecycle decision, with
//!   size-based rotation and a validating reader.
//! * [`dash`] — renders the operator dashboard (self-contained HTML)
//!   and the Chrome-trace export from an op-log.
//! * [`efficacy`] — the per-tenant `APTEL1` hint-efficacy ledger:
//!   prefetch outcomes attributed to the hint generation that produced
//!   them, plus the regression policy that auto-rolls-back a generation
//!   whose timely share trails its predecessor's.
//!
//! The daemon is workload-agnostic: hint derivation is injected as a
//! [`Reoptimizer`], and the CLI supplies `optimize_from_db` +
//! `serialize_hints` — the same path the offline `hints` verb uses, so
//! a hot-swapped `current.hints` is byte-identical to what an offline
//! rebuild from the same shard would produce.

pub mod batch;
pub mod client;
pub mod daemon;
pub mod dash;
pub mod efficacy;
pub mod metrics;
pub mod oplog;
pub mod protocol;
pub mod shard;
pub mod swap;

pub use batch::{Accepted, Committer, FnReoptimizer, Job, Reoptimizer};
pub use client::{upload_backlog_warning, Client, ClientError, QUEUE_WARN_DEFAULT};
pub use daemon::{backlog_warning, status_json, status_text, Daemon, ServeConfig};
pub use dash::{chrome_trace, render_dashboard};
pub use efficacy::{EfficacyLedger, GenEfficacy};
pub use metrics::{QueueDepth, ServeMetrics};
pub use oplog::{
    read_oplog_dir, trace_hex, Obs, OpKind, OpLogConfig, OpLogWriter, OpRecord, Stage,
};
pub use protocol::{Reply, UploadHeader, UploadReply};
pub use shard::{ApplyOutcome, ShardStore};
pub use swap::HintSwapper;
