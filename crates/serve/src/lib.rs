//! # apt-serve
//!
//! The adaptive reoptimization daemon: continuous profile ingest with
//! automatic hint re-derivation, closing the paper's deployment loop
//! (§3.6). Production machines keep profiling; dumps stream to this
//! daemon; when a workload's latency distributions drift far enough
//! that the deployed prefetch distances are stale (Eq. 1 moved), the
//! hint file is re-derived from the accumulated history and hot-swapped
//! atomically for the next process launch to pick up.
//!
//! * [`protocol`] — the `APTS1` wire format: length-prefixed streamed
//!   uploads, hard caps on every length field.
//! * [`shard`] — per-tenant `APTDB1` shard files with canonical
//!   (label-sorted) epoch order, so any upload interleaving yields
//!   byte-identical shards.
//! * [`batch`] — the single committer thread: one shard write per
//!   tenant per batch, post-commit drift detection, reoptimization.
//! * [`swap`] — generation-numbered atomic hint hot-swap with rollback
//!   and an append-only audit log.
//! * [`daemon`] — acceptor + per-connection handlers; upload bodies go
//!   straight from the socket into the streaming parser.
//! * [`client`] — the blocking upload/status client the CLI wraps.
//! * [`metrics`] — per-tenant counters and the ingest-latency histogram
//!   on the shared registry / existing `/metrics` endpoint.
//!
//! The daemon is workload-agnostic: hint derivation is injected as a
//! [`Reoptimizer`], and the CLI supplies `optimize_from_db` +
//! `serialize_hints` — the same path the offline `hints` verb uses, so
//! a hot-swapped `current.hints` is byte-identical to what an offline
//! rebuild from the same shard would produce.

pub mod batch;
pub mod client;
pub mod daemon;
pub mod metrics;
pub mod protocol;
pub mod shard;
pub mod swap;

pub use batch::{Accepted, Committer, FnReoptimizer, Job, Reoptimizer};
pub use client::{Client, ClientError};
pub use daemon::{status_text, Daemon, ServeConfig};
pub use metrics::ServeMetrics;
pub use protocol::{Reply, UploadHeader, UploadReply};
pub use shard::{ApplyOutcome, ShardStore};
pub use swap::HintSwapper;
