//! The per-tenant hint-efficacy ledger: prefetch-outcome evidence
//! segmented by the hint generation that produced it, plus the
//! regression policy that turns a bad generation into an automatic
//! rollback.
//!
//! Deployed binaries running under a hot-swapped generation report
//! per-PC prefetch outcomes back through tagged dumps (`# hintgen:` +
//! `# pf-outcome:` headers). The committer lands every accepted epoch's
//! outcome counters here, keyed by generation — generation 0 collects
//! untagged (pre-feedback / baseline) epochs — so the daemon can answer
//! "did the hints it shipped actually help" per generation, not just in
//! aggregate.
//!
//! The same serializer discipline as the `APTDB1` shards applies:
//!
//! * **pure-addition merge** — a [`GenEfficacy`] is a sum of epoch
//!   counters (the `rolled_back` flag ORs), so merging ledgers is
//!   associative and commutative and the ledger *content* never depends
//!   on upload arrival order.
//! * **canonical bytes** — `BTreeMap` ordering everywhere; encode of
//!   equal ledgers is byte-identical, so ledger files are
//!   arrival-order-independent too.
//! * **crash safety** — saves go through temp + rename with the same
//!   `<name>.tmp.<pid>` naming the shards use, so the
//!   [`crate::ShardStore`] orphan sweep covers torn ledger writes in the
//!   shared `db_dir` for free.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use apt_ingest::AggregateProfile;
use apt_trace::PcOutcomes;

/// Magic + format version; bump when the layout changes.
pub const LEDGER_MAGIC: &[u8; 8] = b"APTEL1\0\0";
/// Ledger file extension (files live beside the `.aptdb` shards).
pub const LEDGER_EXT: &str = "aptel";

/// The ledger key untagged (pre-feedback) epochs collect under.
pub const GEN_BASELINE: u64 = 0;

/// Everything the ledger knows about one hint generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenEfficacy {
    /// Epochs that reported under this generation.
    pub epochs: u64,
    /// Instructions across those epochs (IPC proxy numerator).
    pub instructions: u64,
    /// Cycles across those epochs (IPC proxy denominator).
    pub cycles: u64,
    /// Per-prefetch-PC outcome counters, summed across epochs.
    pub per_pc: BTreeMap<u64, PcOutcomes>,
    /// Set once the regression policy has rolled this generation back,
    /// so the policy fires at most once per generation regardless of
    /// how later evidence arrives.
    pub rolled_back: bool,
}

impl GenEfficacy {
    /// Sum of the per-PC outcome counters.
    pub fn total(&self) -> PcOutcomes {
        let mut t = PcOutcomes::default();
        for o in self.per_pc.values() {
            t.add(o);
        }
        t
    }

    /// Timely share of issued prefetches, or `None` before any outcome
    /// evidence (baseline epochs report no `# pf-outcome:` headers).
    pub fn timely_share(&self) -> Option<f64> {
        let t = self.total();
        (t.issued > 0).then(|| t.timely as f64 / t.issued as f64)
    }

    /// Eq. 1 residual proxy in cycles per classified prefetch: mean
    /// timely slack minus mean late head-start, weighted together.
    /// Positive residual means prefetches land with room to spare;
    /// negative means demand loads are catching the fills in flight.
    pub fn residual_cycles(&self) -> f64 {
        let t = self.total();
        let classified = (t.timely + t.late).max(1);
        (t.timely_slack_cycles as f64 - t.late_head_start_cycles as f64) / classified as f64
    }

    /// Instructions-per-cycle proxy over this generation's epochs.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// Pure-addition merge (the `rolled_back` flag ORs).
    pub fn merge(&mut self, other: &GenEfficacy) {
        self.epochs += other.epochs;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        for (pc, o) in &other.per_pc {
            self.per_pc.entry(*pc).or_default().add(o);
        }
        self.rolled_back |= other.rolled_back;
    }
}

/// One tenant's efficacy ledger: evidence per hint generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EfficacyLedger {
    /// Keyed by generation number; 0 is the untagged baseline bucket.
    pub generations: BTreeMap<u64, GenEfficacy>,
}

impl EfficacyLedger {
    /// The ledger file a tenant maps to inside `dir`.
    pub fn path(dir: &Path, tenant: &str) -> PathBuf {
        dir.join(format!("{tenant}.{LEDGER_EXT}"))
    }

    /// Folds one accepted epoch's aggregate in under `gen_key`
    /// (`agg.gen.ledger_key()`: its tagged generation, or 0).
    pub fn record_epoch(&mut self, gen_key: u64, agg: &AggregateProfile) {
        let g = self.generations.entry(gen_key).or_default();
        g.epochs += 1;
        g.instructions += agg.instructions;
        g.cycles += agg.cycles;
        for (pc, o) in &agg.pf_outcomes {
            g.per_pc.entry(*pc).or_default().add(o);
        }
    }

    /// Merges another ledger in; associative and commutative.
    pub fn merge(&mut self, other: &EfficacyLedger) {
        for (gen, g) in &other.generations {
            self.generations.entry(*gen).or_default().merge(g);
        }
    }

    /// Total epochs recorded across every generation.
    pub fn total_epochs(&self) -> u64 {
        self.generations.values().map(|g| g.epochs).sum()
    }

    /// The regression-policy verdict for the active generation `gen`:
    /// `Some(prior_gen)` when `gen` has at least `window` epochs of
    /// outcome evidence, has not already been rolled back, and its
    /// timely share trails the best earlier evidenced generation by
    /// more than `threshold`.
    pub fn regression(&self, gen: u64, window: u64, threshold: f64) -> Option<u64> {
        if window == 0 || gen <= 1 {
            return None;
        }
        let cur = self.generations.get(&gen)?;
        if cur.rolled_back || cur.epochs < window {
            return None;
        }
        let cur_share = cur.timely_share()?;
        // Compare against the best evidenced real generation before
        // this one — the baseline bucket (gen 0) has no issued
        // prefetches and never qualifies.
        let (prior, prior_share) = self
            .generations
            .range(1..gen)
            .filter_map(|(g, e)| e.timely_share().map(|s| (*g, s)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?;
        (prior_share - cur_share > threshold).then_some(prior)
    }

    /// Canonical serialization; equal ledgers encode byte-identically.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(LEDGER_MAGIC);
        put_u64(&mut out, self.generations.len() as u64);
        for (gen, g) in &self.generations {
            put_u64(&mut out, *gen);
            put_u64(&mut out, g.epochs);
            put_u64(&mut out, g.instructions);
            put_u64(&mut out, g.cycles);
            put_u64(&mut out, u64::from(g.rolled_back));
            put_u64(&mut out, g.per_pc.len() as u64);
            for (pc, o) in &g.per_pc {
                for v in [
                    *pc,
                    o.issued,
                    o.timely,
                    o.late,
                    o.early,
                    o.useless,
                    o.redundant,
                    o.dropped,
                    o.timely_slack_cycles,
                    o.late_head_start_cycles,
                ] {
                    put_u64(&mut out, v);
                }
            }
        }
        out
    }

    /// Strict inverse of [`EfficacyLedger::encode`]: bad magic,
    /// truncation, trailing garbage or an out-of-range flag all read as
    /// `None`.
    pub fn decode(bytes: &[u8]) -> Option<EfficacyLedger> {
        let mut pos = 0usize;
        let take = |pos: &mut usize| -> Option<u64> {
            let end = pos.checked_add(8)?;
            let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
            *pos = end;
            Some(v)
        };
        // A corrupt count must not trigger a giant allocation.
        let bounded = |n: u64| -> Option<usize> {
            if n > bytes.len() as u64 {
                None
            } else {
                Some(n as usize)
            }
        };
        if bytes.get(..8)? != LEDGER_MAGIC {
            return None;
        }
        pos += 8;
        let n_gens = bounded(take(&mut pos)?)?;
        let mut ledger = EfficacyLedger::default();
        for _ in 0..n_gens {
            let gen = take(&mut pos)?;
            let mut g = GenEfficacy {
                epochs: take(&mut pos)?,
                instructions: take(&mut pos)?,
                cycles: take(&mut pos)?,
                ..GenEfficacy::default()
            };
            g.rolled_back = match take(&mut pos)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let n_pcs = bounded(take(&mut pos)?)?;
            for _ in 0..n_pcs {
                let pc = take(&mut pos)?;
                let o = PcOutcomes {
                    issued: take(&mut pos)?,
                    timely: take(&mut pos)?,
                    late: take(&mut pos)?,
                    early: take(&mut pos)?,
                    useless: take(&mut pos)?,
                    redundant: take(&mut pos)?,
                    dropped: take(&mut pos)?,
                    timely_slack_cycles: take(&mut pos)?,
                    late_head_start_cycles: take(&mut pos)?,
                };
                if g.per_pc.insert(pc, o).is_some() {
                    return None;
                }
            }
            if ledger.generations.insert(gen, g).is_some() {
                return None;
            }
        }
        if pos != bytes.len() {
            return None;
        }
        Some(ledger)
    }

    /// Loads a ledger file; missing or corrupt reads as empty (the
    /// evidence re-accumulates, mirroring `ProfileDb::load_or_empty`).
    pub fn load_or_empty(path: impl AsRef<Path>) -> EfficacyLedger {
        fs::read(path)
            .ok()
            .and_then(|b| EfficacyLedger::decode(&b))
            .unwrap_or_default()
    }

    /// Atomically saves the ledger (temp + rename; the temp name matches
    /// the shard-store orphan-sweep pattern).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!("{LEDGER_EXT}.tmp.{}", std::process::id()));
        fs::write(&tmp, self.encode())?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// The `serve-status` efficacy lines: one per generation, stable
    /// formatting, no clocks — a pure function of the ledger.
    pub fn render_status(&self) -> String {
        let mut out = String::new();
        for (gen, g) in &self.generations {
            let name = if *gen == GEN_BASELINE {
                "  efficacy baseline:".to_string()
            } else {
                format!("  efficacy gen {gen}:")
            };
            out.push_str(&name);
            out.push_str(&format!(" {} epoch(s)", g.epochs));
            if let Some(share) = g.timely_share() {
                out.push_str(&format!(
                    ", timely {share:.4}, residual {:+.1} cyc",
                    self.generations[gen].residual_cycles()
                ));
            }
            if let Some(ipc) = g.ipc() {
                out.push_str(&format!(", ipc {ipc:.3}"));
            }
            if g.rolled_back {
                out.push_str(" (rolled back)");
            }
            out.push('\n');
        }
        out
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(issued: u64, timely: u64, late: u64) -> PcOutcomes {
        PcOutcomes {
            issued,
            timely,
            late,
            useless: issued - timely - late,
            timely_slack_cycles: timely * 80,
            late_head_start_cycles: late * 30,
            ..PcOutcomes::default()
        }
    }

    fn agg(gen_key: u64, issued: u64, timely: u64) -> (u64, AggregateProfile) {
        let mut a = AggregateProfile {
            instructions: 1000,
            cycles: 2000,
            ..AggregateProfile::default()
        };
        if issued > 0 {
            a.pf_outcomes
                .insert(0x400100, outcomes(issued, timely, issued - timely));
        }
        (gen_key, a)
    }

    #[test]
    fn record_and_shares() {
        let mut l = EfficacyLedger::default();
        let (k, a) = agg(2, 16, 12);
        l.record_epoch(k, &a);
        l.record_epoch(k, &a);
        let g = &l.generations[&2];
        assert_eq!(g.epochs, 2);
        assert_eq!(g.instructions, 2000);
        assert_eq!(g.timely_share(), Some(0.75));
        assert_eq!(g.ipc(), Some(0.5));
        // Baseline epochs carry no outcomes: share is None, IPC works.
        let (k, a) = agg(0, 0, 0);
        l.record_epoch(k, &a);
        assert_eq!(l.generations[&0].timely_share(), None);
        assert_eq!(l.total_epochs(), 3);
    }

    #[test]
    fn encode_decode_round_trips_and_rejects_damage() {
        let mut l = EfficacyLedger::default();
        l.record_epoch(0, &agg(0, 0, 0).1);
        l.record_epoch(1, &agg(1, 32, 30).1);
        l.record_epoch(2, &agg(2, 32, 4).1);
        l.generations.get_mut(&2).unwrap().rolled_back = true;
        let bytes = l.encode();
        assert_eq!(&bytes[..8], LEDGER_MAGIC);
        assert_eq!(EfficacyLedger::decode(&bytes), Some(l.clone()));
        // Truncation, trailing garbage, bad magic, bad flag.
        assert_eq!(EfficacyLedger::decode(&bytes[..bytes.len() - 1]), None);
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(EfficacyLedger::decode(&trailing), None);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(EfficacyLedger::decode(&bad), None);
        let mut huge = bytes.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(EfficacyLedger::decode(&huge), None);
    }

    #[test]
    fn merge_is_associative_and_commutative_with_canonical_bytes() {
        // Deterministic xorshift so the property sweep needs no RNG dep.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut parts = Vec::new();
            for _ in 0..3 {
                let mut l = EfficacyLedger::default();
                for _ in 0..(next() % 4) {
                    let gen = next() % 3;
                    let issued = 8 + next() % 32;
                    let timely = next() % (issued + 1);
                    l.record_epoch(gen, &agg(gen, issued, timely).1);
                }
                if next() % 4 == 0 {
                    l.generations.entry(next() % 3).or_default().rolled_back = true;
                }
                parts.push(l);
            }
            let [a, b, c] = [&parts[0], &parts[1], &parts[2]];
            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "associativity");
            // a ⊕ b == b ⊕ a, byte-for-byte.
            let mut ab = a.clone();
            ab.merge(b);
            let mut ba = b.clone();
            ba.merge(a);
            assert_eq!(ab.encode(), ba.encode(), "commutativity");
        }
    }

    #[test]
    fn regression_fires_only_with_enough_evidence_and_a_real_gap() {
        let mut l = EfficacyLedger::default();
        for _ in 0..3 {
            l.record_epoch(1, &agg(1, 32, 30).1); // ~0.94 timely
        }
        l.record_epoch(2, &agg(2, 32, 4).1); // 0.125 timely
                                             // One epoch of gen-2 evidence is below the window.
        assert_eq!(l.regression(2, 2, 0.2), None);
        l.record_epoch(2, &agg(2, 32, 4).1);
        assert_eq!(l.regression(2, 2, 0.2), Some(1));
        // Tolerance above the gap: no rollback.
        assert_eq!(l.regression(2, 2, 0.9), None);
        // Gen 1 has nothing earlier to fall back to.
        assert_eq!(l.regression(1, 1, 0.0), None);
        // Window 0 disables the policy outright.
        assert_eq!(l.regression(2, 0, 0.2), None);
        // A rolled-back generation never re-fires.
        l.generations.get_mut(&2).unwrap().rolled_back = true;
        assert_eq!(l.regression(2, 2, 0.2), None);
    }

    #[test]
    fn save_load_round_trips_and_tolerates_missing_or_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("apt-efficacy-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = EfficacyLedger::path(&dir, "BFS");
        assert_eq!(
            EfficacyLedger::load_or_empty(&path),
            EfficacyLedger::default()
        );
        let mut l = EfficacyLedger::default();
        l.record_epoch(1, &agg(1, 16, 12).1);
        l.save(&path).unwrap();
        assert_eq!(EfficacyLedger::load_or_empty(&path), l);
        fs::write(&path, b"garbage").unwrap();
        assert_eq!(
            EfficacyLedger::load_or_empty(&path),
            EfficacyLedger::default()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_rendering_is_stable() {
        let mut l = EfficacyLedger::default();
        l.record_epoch(0, &agg(0, 0, 0).1);
        l.record_epoch(1, &agg(1, 32, 24).1);
        l.generations.get_mut(&1).unwrap().rolled_back = true;
        assert_eq!(
            l.render_status(),
            "  efficacy baseline: 1 epoch(s), ipc 0.500\n  \
             efficacy gen 1: 1 epoch(s), timely 0.7500, residual +52.5 cyc, ipc 0.500 (rolled back)\n"
        );
    }
}
