//! Atomic hint-file hot-swap with generations and rollback.
//!
//! The consumer contract mirrors how a production loader would watch an
//! AutoFDO profile directory (paper §3.6): readers open
//! `<dir>/current.hints` at their convenience and must never observe a
//! torn file. Every swap therefore goes through write-temp + rename —
//! on POSIX a rename over an existing name is atomic, so a reader sees
//! the whole old file or the whole new file.
//!
//! Each swap first lands as an immutable numbered generation
//! (`gen-000001.hints`, `gen-000002.hints`, …) before `current.hints`
//! is repointed, and the active generation number is recorded in a
//! `CURRENT` state file. That makes two operations trivial and safe:
//!
//! * **Rollback** — repoint `current.hints` at the previous generation;
//!   the bytes are still on disk, nothing is regenerated.
//! * **Audit** — `swap.log` appends one line per swap or rollback (no
//!   wall-clock timestamps, so two runs that make the same decisions
//!   write the same log).

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File readers watch; always points at the active generation's bytes.
pub const CURRENT_HINTS: &str = "current.hints";
/// State file holding the active generation number in decimal.
pub const CURRENT_STATE: &str = "CURRENT";
/// Append-only audit log.
pub const SWAP_LOG: &str = "swap.log";

/// Manages one tenant's hint directory.
#[derive(Debug, Clone)]
pub struct HintSwapper {
    dir: PathBuf,
}

impl HintSwapper {
    /// Opens (creating if necessary) a hint directory and repairs a
    /// half-finished swap: if `CURRENT` names a generation whose bytes
    /// exist but `current.hints` is missing, the pointer is restored.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<HintSwapper> {
        let swapper = HintSwapper { dir: dir.into() };
        fs::create_dir_all(&swapper.dir)?;
        if let Some(gen) = swapper.current_generation() {
            let gen_path = swapper.generation_path(gen);
            let cur = swapper.dir.join(CURRENT_HINTS);
            if gen_path.exists() && !cur.exists() {
                atomic_write(&cur, &fs::read(&gen_path)?)?;
            }
        }
        Ok(swapper)
    }

    /// The directory backing this swapper.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the file consumers watch.
    pub fn current_hints_path(&self) -> PathBuf {
        self.dir.join(CURRENT_HINTS)
    }

    /// Path of an immutable numbered generation.
    pub fn generation_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("gen-{gen:06}.hints"))
    }

    /// The active generation number, if any swap has happened.
    pub fn current_generation(&self) -> Option<u64> {
        let text = fs::read_to_string(self.dir.join(CURRENT_STATE)).ok()?;
        text.trim().parse().ok()
    }

    /// Installs new hint bytes: writes the next numbered generation,
    /// atomically repoints `current.hints`, records the generation in
    /// `CURRENT`, and appends to `swap.log`. Returns the new generation.
    pub fn swap_in(&self, hints: &[u8], note: &str) -> io::Result<u64> {
        apt_selfprof::prof_scope!("serve/swap");
        let gen = self.current_generation().unwrap_or(0) + 1;
        atomic_write(&self.generation_path(gen), hints)?;
        atomic_write(&self.current_hints_path(), hints)?;
        atomic_write(&self.dir.join(CURRENT_STATE), format!("{gen}\n").as_bytes())?;
        self.log_line(&format!("swap gen={gen:06} bytes={} {note}", hints.len()))?;
        Ok(gen)
    }

    /// Repoints `current.hints` at the previous generation. Returns the
    /// generation now active, or `None` when there is nothing to roll
    /// back to (no swap yet, or already at generation 1).
    pub fn rollback(&self, note: &str) -> io::Result<Option<u64>> {
        let Some(gen) = self.current_generation() else {
            return Ok(None);
        };
        if gen <= 1 {
            return Ok(None);
        }
        let prev = gen - 1;
        let bytes = fs::read(self.generation_path(prev))?;
        atomic_write(&self.current_hints_path(), &bytes)?;
        atomic_write(
            &self.dir.join(CURRENT_STATE),
            format!("{prev}\n").as_bytes(),
        )?;
        self.log_line(&format!("rollback from={gen:06} to={prev:06} {note}"))?;
        Ok(Some(prev))
    }

    /// Atomically writes an informational sidecar (e.g. `drift.txt`)
    /// next to the hints.
    pub fn write_sidecar(&self, name: &str, contents: &str) -> io::Result<()> {
        atomic_write(&self.dir.join(name), contents.as_bytes())
    }

    /// Reads the audit log's complete lines. `swap.log` is a plain
    /// append (not temp+rename — it must accumulate), so a crash
    /// mid-append can tear the final line; like the op-log reader, the
    /// torn tail is dropped instead of poisoning the whole history. A
    /// missing log reads as empty.
    pub fn read_log(&self) -> io::Result<Vec<String>> {
        let bytes = match fs::read(self.dir.join(SWAP_LOG)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        // Split on bytes before UTF-8 validation: a torn tail may end
        // mid-character and must not fail the complete lines before it.
        let keep = if bytes.last().is_some_and(|&b| b != b'\n') {
            bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1)
        } else {
            bytes.len()
        };
        let text = std::str::from_utf8(&bytes[..keep])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("swap.log: {e}")))?;
        Ok(text.lines().map(str::to_string).collect())
    }

    fn log_line(&self, line: &str) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(SWAP_LOG))?;
        writeln!(f, "{line}")
    }
}

/// Write-temp + rename; readers of `path` never see a torn file.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension(format!("swaptmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apt-swap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn swaps_advance_generations_and_keep_history() {
        let dir = tmp_dir("gen");
        let sw = HintSwapper::open(&dir).unwrap();
        assert_eq!(sw.current_generation(), None);
        assert_eq!(sw.swap_in(b"v1", "first").unwrap(), 1);
        assert_eq!(sw.swap_in(b"v2", "second").unwrap(), 2);
        assert_eq!(sw.current_generation(), Some(2));
        assert_eq!(fs::read(sw.current_hints_path()).unwrap(), b"v2");
        assert_eq!(fs::read(sw.generation_path(1)).unwrap(), b"v1");
        assert_eq!(fs::read(sw.generation_path(2)).unwrap(), b"v2");
        let log = fs::read_to_string(dir.join(SWAP_LOG)).unwrap();
        assert!(log.contains("swap gen=000001 bytes=2 first"));
        assert!(log.contains("swap gen=000002 bytes=2 second"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_restores_previous_bytes() {
        let dir = tmp_dir("rb");
        let sw = HintSwapper::open(&dir).unwrap();
        assert_eq!(sw.rollback("nothing").unwrap(), None);
        sw.swap_in(b"v1", "").unwrap();
        assert_eq!(sw.rollback("at-first").unwrap(), None);
        sw.swap_in(b"v2", "").unwrap();
        assert_eq!(sw.rollback("regression").unwrap(), Some(1));
        assert_eq!(sw.current_generation(), Some(1));
        assert_eq!(fs::read(sw.current_hints_path()).unwrap(), b"v1");
        // The rolled-back generation's bytes are preserved for audit.
        assert!(sw.generation_path(2).exists());
        // The next swap supersedes it rather than reusing its number.
        assert_eq!(sw.swap_in(b"v3", "").unwrap(), 2);
        assert_eq!(fs::read(sw.generation_path(2)).unwrap(), b"v3");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_repairs_a_missing_current_pointer() {
        let dir = tmp_dir("repair");
        let sw = HintSwapper::open(&dir).unwrap();
        sw.swap_in(b"v1", "").unwrap();
        fs::remove_file(sw.current_hints_path()).unwrap();
        let sw = HintSwapper::open(&dir).unwrap();
        assert_eq!(fs::read(sw.current_hints_path()).unwrap(), b"v1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_log_drops_a_torn_final_line() {
        let dir = tmp_dir("tornlog");
        let sw = HintSwapper::open(&dir).unwrap();
        assert_eq!(sw.read_log().unwrap(), Vec::<String>::new());
        sw.swap_in(b"v1", "first").unwrap();
        sw.swap_in(b"v2", "second").unwrap();
        sw.rollback("regression").unwrap();
        let complete = sw.read_log().unwrap();
        assert_eq!(complete.len(), 3);
        assert_eq!(complete[2], "rollback from=000002 to=000001 regression");

        // Crash mid-append: a partial line (ending mid-UTF-8 sequence)
        // with no newline must not poison the complete history.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(SWAP_LOG))
            .unwrap();
        f.write_all(b"swap gen=000003 byt\xe2\x82").unwrap();
        drop(f);
        assert_eq!(sw.read_log().unwrap(), complete);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecars_write_atomically() {
        let dir = tmp_dir("sidecar");
        let sw = HintSwapper::open(&dir).unwrap();
        sw.write_sidecar("drift.txt", "report\n").unwrap();
        assert_eq!(
            fs::read_to_string(dir.join("drift.txt")).unwrap(),
            "report\n"
        );
        sw.write_sidecar("drift.txt", "newer\n").unwrap();
        assert_eq!(
            fs::read_to_string(dir.join("drift.txt")).unwrap(),
            "newer\n"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
