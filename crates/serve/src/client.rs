//! The upload client: a thin blocking wrapper over the `APTS1`
//! protocol, streaming profile dumps from disk (or any reader) without
//! buffering them.

use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use crate::protocol::{self, Reply, UploadHeader, UploadReply};

/// Client-side failures, split by where the fault lies.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The daemon rejected the request (its error string).
    Server(String),
    /// The daemon answered something the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(m) => write!(f, "server rejected request: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to the daemon; reusable for many requests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and sends the protocol hello.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        // Frames are small; Nagle+delayed-ACK would add ~40 ms each.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(60)))?;
        stream.write_all(protocol::HELLO)?;
        Ok(Client { stream })
    }

    /// Uploads `len` bytes of perf-script text from `reader` as one
    /// epoch and returns the daemon's commit verdict.
    pub fn upload_reader(
        &mut self,
        tenant: &str,
        label: &str,
        len: u64,
        reader: &mut dyn Read,
    ) -> Result<UploadReply, ClientError> {
        self.upload_inner(tenant, label, None, len, reader)
    }

    /// [`Client::upload_reader`] over the traced (kind-3) framing: the
    /// upload's daemon-side spans are recorded under `trace` (0 lets
    /// the daemon assign one), and the reply echoes the effective ID.
    pub fn upload_reader_traced(
        &mut self,
        tenant: &str,
        label: &str,
        trace: u64,
        len: u64,
        reader: &mut dyn Read,
    ) -> Result<UploadReply, ClientError> {
        self.upload_inner(tenant, label, Some(trace), len, reader)
    }

    fn upload_inner(
        &mut self,
        tenant: &str,
        label: &str,
        trace: Option<u64>,
        len: u64,
        reader: &mut dyn Read,
    ) -> Result<UploadReply, ClientError> {
        if !protocol::valid_tenant(tenant) {
            return Err(ClientError::Protocol(format!("invalid tenant `{tenant}`")));
        }
        if !protocol::valid_label(label) {
            return Err(ClientError::Protocol(format!("invalid label `{label}`")));
        }
        let header = UploadHeader {
            tenant: tenant.to_string(),
            label: label.to_string(),
            body_len: len,
        };
        match trace {
            Some(t) => protocol::write_upload_header_traced(&mut self.stream, &header, t)?,
            None => protocol::write_upload_header(&mut self.stream, &header)?,
        }
        let copied = io::copy(&mut reader.take(len), &mut self.stream)?;
        if copied != len {
            // The announced length was wrong; the stream is desynced
            // and this connection cannot be reused.
            return Err(ClientError::Protocol(format!(
                "body shorter than announced: {copied} of {len} bytes"
            )));
        }
        let reply = match trace {
            Some(_) => protocol::read_upload_reply_traced(&mut self.stream)?,
            None => protocol::read_upload_reply(&mut self.stream)?,
        };
        match reply {
            Reply::Upload(reply) => Ok(reply),
            Reply::Err(message) => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to upload: {other:?}"
            ))),
        }
    }

    /// Uploads a dump file as one epoch (streamed; the file is never
    /// read into memory whole).
    pub fn upload_file(
        &mut self,
        tenant: &str,
        label: &str,
        path: impl AsRef<Path>,
    ) -> Result<UploadReply, ClientError> {
        let file = fs::File::open(&path)?;
        let len = file.metadata()?.len();
        self.upload_reader(tenant, label, len, &mut io::BufReader::new(file))
    }

    /// [`Client::upload_file`] over the traced (kind-3) framing.
    pub fn upload_file_traced(
        &mut self,
        tenant: &str,
        label: &str,
        trace: u64,
        path: impl AsRef<Path>,
    ) -> Result<UploadReply, ClientError> {
        let file = fs::File::open(&path)?;
        let len = file.metadata()?.len();
        self.upload_reader_traced(tenant, label, trace, len, &mut io::BufReader::new(file))
    }

    /// Fetches a tenant's status report.
    pub fn status(&mut self, tenant: &str) -> Result<String, ClientError> {
        self.status_kind(tenant, protocol::KIND_STATUS)
    }

    /// Fetches a tenant's status report as a JSON document (the same
    /// facts `status` renders as text, machine-readable).
    pub fn status_json(&mut self, tenant: &str) -> Result<String, ClientError> {
        self.status_kind(tenant, protocol::KIND_STATUS_JSON)
    }

    fn status_kind(&mut self, tenant: &str, kind: u8) -> Result<String, ClientError> {
        if !protocol::valid_tenant(tenant) {
            return Err(ClientError::Protocol(format!("invalid tenant `{tenant}`")));
        }
        self.stream.write_all(&[kind])?;
        protocol::write_str(&mut self.stream, tenant)?;
        match protocol::read_status_reply(&mut self.stream)? {
            Reply::Status(report) => Ok(report),
            Reply::Err(message) => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to status: {other:?}"
            ))),
        }
    }
}

/// Default committer-queue depth at which the upload client warns the
/// operator that the daemon is backlogged (see [`UploadReply::queue_depth`]).
pub const QUEUE_WARN_DEFAULT: u64 = 64;

/// The operator-facing backlog warning for an upload reply, if its
/// reported committer queue depth is at or past `threshold`. Uploads
/// are accepted either way — the warning just tells the operator that
/// commits (and therefore hint refreshes) are lagging ingest.
pub fn upload_backlog_warning(reply: &UploadReply, threshold: u64) -> Option<String> {
    crate::daemon::backlog_warning(reply.queue_depth, threshold)
        .map(|w| w.trim_end_matches('\n').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(queue_depth: u64) -> UploadReply {
        UploadReply {
            events: 10,
            shard_epochs: 1,
            drifted: false,
            max_tv: 0.0,
            generation: None,
            queue_depth,
            message: String::new(),
            trace: 0,
        }
    }

    #[test]
    fn upload_backlog_warning_tracks_the_reported_queue_depth() {
        assert_eq!(upload_backlog_warning(&reply(0), QUEUE_WARN_DEFAULT), None);
        assert_eq!(upload_backlog_warning(&reply(63), 64), None);
        let warn = upload_backlog_warning(&reply(64), 64).unwrap();
        assert_eq!(
            warn,
            "warning: committer queue depth 64 >= 64 (ingest backlogged)"
        );
        // Threshold 0 disables the warning entirely.
        assert_eq!(upload_backlog_warning(&reply(10_000), 0), None);
    }
}
