//! The operator dashboard: renders a validated op-log (plus an optional
//! `/metrics` scrape) into one self-contained inline-SVG HTML page, and
//! exports the daemon's request spans as a Chrome trace document.
//!
//! Everything here is a pure function of its inputs — no clocks, no
//! filesystem — so under a `FakeClock`-produced op-log the HTML and the
//! trace JSON are byte-stable (golden-tested in `tests/dash_golden.rs`),
//! and the page follows `apt-timeline`'s air-gap discipline: no
//! JavaScript, no external references.

use std::collections::BTreeMap;

use apt_timeline::html::{self, Band, Series, VMark, PALETTE};
use apt_trace::{ChromeTrace, Span};

use crate::efficacy::{EfficacyLedger, GEN_BASELINE};
use crate::oplog::{trace_hex, EpochOutcome, OpKind, OpRecord, STAGES};

/// Time buckets per chart (the implicit x axis).
const BUCKETS: usize = 30;

fn palette(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// `[t_min, t_max]` over every record, or `None` for an empty log.
fn time_range(records: &[OpRecord]) -> Option<(u64, u64)> {
    let min = records.iter().map(|r| r.t_us).min()?;
    let max = records.iter().map(|r| r.t_us).max()?;
    Some((min, max))
}

fn bucket_of(t_us: u64, range: (u64, u64)) -> usize {
    let (lo, hi) = range;
    if hi <= lo {
        return 0;
    }
    let idx = ((t_us - lo) as u128 * BUCKETS as u128 / (hi - lo + 1) as u128) as usize;
    idx.min(BUCKETS - 1)
}

fn overview_section(records: &[OpRecord]) -> String {
    let mut conns = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut evicted = 0u64;
    let mut batches = 0u64;
    let mut swaps = 0u64;
    let mut rollbacks = 0u64;
    let mut traces = std::collections::BTreeSet::new();
    for r in records {
        match &r.kind {
            OpKind::ConnOpen { .. } => conns += 1,
            OpKind::Epoch { outcome, .. } => match outcome {
                EpochOutcome::Accepted => accepted += 1,
                EpochOutcome::Rejected => rejected += 1,
                EpochOutcome::Evicted => evicted += 1,
            },
            OpKind::Batch { .. } => batches += 1,
            OpKind::Swap { .. } => swaps += 1,
            OpKind::Rollback { .. } => rollbacks += 1,
            OpKind::Span { trace, .. } => {
                traces.insert(*trace);
            }
            _ => {}
        }
    }
    let mut out = String::from("<table><tr><th>what</th><th>count</th></tr>");
    for (what, n) in [
        ("records", records.len() as u64),
        ("connections", conns),
        ("traces", traces.len() as u64),
        ("epochs accepted", accepted),
        ("epochs rejected", rejected),
        ("epochs evicted", evicted),
        ("batches", batches),
        ("hint swaps", swaps),
        ("rollbacks", rollbacks),
    ] {
        out.push_str(&format!("<tr><td>{what}</td><td>{n}</td></tr>"));
    }
    out.push_str("</table>");
    out
}

fn ingest_section(records: &[OpRecord], range: (u64, u64)) -> String {
    let mut per_tenant: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for r in records {
        if let OpKind::Epoch {
            tenant,
            outcome: EpochOutcome::Accepted,
            ..
        } = &r.kind
        {
            per_tenant
                .entry(tenant)
                .or_insert_with(|| vec![0.0; BUCKETS])[bucket_of(r.t_us, range)] += 1.0;
        }
    }
    if per_tenant.is_empty() {
        return "<p>no accepted epochs on the log.</p>".to_string();
    }
    let series: Vec<Series> = per_tenant
        .iter()
        .enumerate()
        .map(|(i, (tenant, pts))| Series::new(tenant.to_string(), palette(i), pts.clone()))
        .collect();
    html::line_chart(&series, &[], "epochs/bucket")
}

fn drift_section(records: &[OpRecord]) -> String {
    // Per tenant: the drift scores in log order, and for every swap the
    // index of the drift evaluation it followed (for the marker x).
    let mut scores: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut swaps: BTreeMap<&str, Vec<(usize, u64)>> = BTreeMap::new();
    for r in records {
        match &r.kind {
            OpKind::Drift { tenant, max_tv, .. } => {
                scores.entry(tenant).or_default().push(*max_tv);
            }
            OpKind::Swap {
                tenant, generation, ..
            } => {
                let at = scores.get(tenant.as_str()).map_or(0, |s| s.len());
                swaps
                    .entry(tenant)
                    .or_default()
                    .push((at.saturating_sub(1), *generation));
            }
            _ => {}
        }
    }
    if scores.is_empty() {
        return "<p>no drift evaluations on the log.</p>".to_string();
    }
    let mut out = String::new();
    for (i, (tenant, pts)) in scores.iter().enumerate() {
        let denom = (pts.len().max(2) - 1) as f64;
        let marks: Vec<VMark> = swaps
            .get(tenant)
            .map(|s| {
                s.iter()
                    .map(|(idx, generation)| VMark {
                        label: format!("gen {generation}"),
                        x: *idx as f64 / denom,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let series = [Series::new(tenant.to_string(), palette(i), pts.clone())];
        out.push_str(&html::line_chart_marked(&series, &marks, "max_tv"));
    }
    out
}

fn stage_section(records: &[OpRecord], range: (u64, u64)) -> String {
    // Average span duration per stage per time bucket, stacked in
    // pipeline order.
    let mut sums = vec![[0.0f64; BUCKETS]; STAGES.len()];
    let mut counts = vec![[0u64; BUCKETS]; STAGES.len()];
    let mut any = false;
    for r in records {
        if let OpKind::Span {
            stage,
            start_us,
            dur_us,
            ..
        } = &r.kind
        {
            let si = STAGES.iter().position(|s| s == stage).unwrap_or(0);
            let b = bucket_of(*start_us, range);
            sums[si][b] += *dur_us as f64;
            counts[si][b] += 1;
            any = true;
        }
    }
    if !any {
        return "<p>no request spans on the log.</p>".to_string();
    }
    let series: Vec<Series> = STAGES
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            let pts: Vec<f64> = (0..BUCKETS)
                .map(|b| {
                    if counts[si][b] == 0 {
                        0.0
                    } else {
                        sums[si][b] / counts[si][b] as f64
                    }
                })
                .collect();
            Series::new(stage.name(), palette(si), pts)
        })
        .collect();
    html::stack_chart(&series, &[], "avg us")
}

fn decisions_section(records: &[OpRecord]) -> String {
    let mut rows: Vec<(u64, u64, String, String, String)> = Vec::new();
    for r in records {
        let (tenant, event, detail) = match &r.kind {
            OpKind::Drift {
                tenant,
                label,
                max_tv,
                exceeded: true,
                ..
            } => (
                tenant.clone(),
                "drift exceeded".to_string(),
                format!("{label}: max_tv={max_tv:.4}"),
            ),
            OpKind::Reopt {
                tenant,
                outcome,
                generation,
                detail,
                ..
            } => (
                tenant.clone(),
                format!("reopt {}", outcome.name()),
                format!("gen {generation} {detail}"),
            ),
            OpKind::Swap {
                tenant,
                generation,
                bytes,
                note,
                ..
            } => (
                tenant.clone(),
                "swap".to_string(),
                format!("gen {generation}, {bytes} bytes, {note}"),
            ),
            OpKind::Rollback {
                tenant,
                from_gen,
                to_gen,
                note,
            } => (
                tenant.clone(),
                "rollback".to_string(),
                format!("gen {from_gen} -> {to_gen}, {note}"),
            ),
            _ => continue,
        };
        rows.push((r.seq, r.t_us, tenant, event, detail));
    }
    if rows.is_empty() {
        return "<p>no decisions on the log.</p>".to_string();
    }
    let skipped = rows.len().saturating_sub(12);
    let mut out = String::new();
    if skipped > 0 {
        out.push_str(&format!(
            "<p>showing the last 12 of {} decisions.</p>",
            rows.len()
        ));
    }
    out.push_str(
        "<table><tr><th>seq</th><th>t_us</th><th>tenant</th><th>event</th><th>detail</th></tr>",
    );
    for (seq, t_us, tenant, event, detail) in rows.into_iter().skip(skipped) {
        out.push_str(&format!(
            "<tr><td>{seq}</td><td>{t_us}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            html::escape(&tenant),
            html::escape(&event),
            html::escape(&detail),
        ));
    }
    out.push_str("</table>");
    out
}

/// Outcome classes stacked in the generation-diff chart, in severity
/// order: the good share first, degradation modes after.
const OUTCOME_CLASSES: [&str; 6] = ["timely", "late", "early", "useless", "redundant", "dropped"];

fn efficacy_section(ledgers: &[(String, EfficacyLedger)]) -> String {
    if ledgers.iter().all(|(_, l)| l.generations.is_empty()) {
        return "<p>no efficacy ledgers.</p>".to_string();
    }
    let mut out = String::new();
    for (tenant, ledger) in ledgers {
        if ledger.generations.is_empty() {
            continue;
        }
        out.push_str(&format!("<h3>{}</h3>", html::escape(tenant)));
        // Stacked outcome-class shares, one x position per generation
        // in ledger (ascending) order — the generation-diff view: a
        // regressing generation shows its timely band shrinking.
        let shares: Vec<[f64; 6]> = ledger
            .generations
            .values()
            .map(|e| {
                let t = e.total();
                let issued = t.issued.max(1) as f64;
                [
                    t.timely as f64 / issued,
                    t.late as f64 / issued,
                    t.early as f64 / issued,
                    t.useless as f64 / issued,
                    t.redundant as f64 / issued,
                    t.dropped as f64 / issued,
                ]
            })
            .collect();
        if shares.iter().any(|s| s.iter().sum::<f64>() > 0.0) {
            let series: Vec<Series> = OUTCOME_CLASSES
                .iter()
                .enumerate()
                .map(|(ci, class)| {
                    let pts: Vec<f64> = shares.iter().map(|s| s[ci]).collect();
                    Series::new(class.to_string(), palette(ci), pts)
                })
                .collect();
            let n = ledger.generations.len() as f64;
            let bands: Vec<Band> = ledger
                .generations
                .keys()
                .enumerate()
                .map(|(i, gen)| Band {
                    label: if *gen == GEN_BASELINE {
                        "baseline".to_string()
                    } else {
                        format!("gen {gen}")
                    },
                    start: i as f64 / n,
                    end: (i + 1) as f64 / n,
                })
                .collect();
            out.push_str(&html::stack_chart(&series, &bands, "outcome share"));
        }
        out.push_str(
            "<table><tr><th>generation</th><th>epochs</th><th>issued</th>\
             <th>timely share</th><th>residual cyc</th><th>ipc</th><th>state</th></tr>",
        );
        for (gen, e) in &ledger.generations {
            let t = e.total();
            let name = if *gen == GEN_BASELINE {
                "baseline".to_string()
            } else {
                format!("gen {gen}")
            };
            let share = e
                .timely_share()
                .map_or_else(|| "-".to_string(), |s| format!("{s:.4}"));
            let residual = if t.issued == 0 {
                "-".to_string()
            } else {
                format!("{:+.1}", e.residual_cycles())
            };
            let ipc = e
                .ipc()
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
            out.push_str(&format!(
                "<tr><td>{name}</td><td>{}</td><td>{}</td><td>{share}</td>\
                 <td>{residual}</td><td>{ipc}</td><td>{}</td></tr>",
                e.epochs,
                t.issued,
                if e.rolled_back { "rolled back" } else { "ok" },
            ));
        }
        out.push_str("</table>");
    }
    out
}

fn metrics_section(text: &str) -> String {
    let exp = match apt_metrics::prom::parse(text) {
        Ok(e) => e,
        Err(e) => {
            return format!(
                "<p class='bad'>metrics scrape did not parse: {}</p>",
                html::escape(&e)
            );
        }
    };
    let mut out = String::from("<table><tr><th>series</th><th>labels</th><th>value</th></tr>");
    let mut any = false;
    for s in &exp.samples {
        if !s.name.starts_with("apt_serve_") || s.name.ends_with("_bucket") {
            continue;
        }
        any = true;
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
            html::escape(&s.name),
            html::escape(&labels),
            apt_metrics::prom::format_f64(s.value),
        ));
    }
    out.push_str("</table>");
    if !any {
        return "<p>no apt_serve_* series on the scrape.</p>".to_string();
    }
    out
}

/// Renders the operator dashboard for one validated op-log, optionally
/// joined with a Prometheus `/metrics` scrape and the per-tenant
/// efficacy ledgers (generation-diff view). Ledgers must arrive
/// pre-sorted by tenant for byte-stable output.
pub fn render_dashboard(
    records: &[OpRecord],
    metrics_text: Option<&str>,
    ledgers: &[(String, EfficacyLedger)],
) -> String {
    let range = time_range(records).unwrap_or((0, 0));
    let mut sections: Vec<(String, String)> = vec![
        ("Overview".to_string(), overview_section(records)),
        (
            "Per-tenant ingest rate".to_string(),
            ingest_section(records, range),
        ),
        (
            "Drift timelines (swap generations marked)".to_string(),
            drift_section(records),
        ),
        (
            "Stage latency breakdown".to_string(),
            stage_section(records, range),
        ),
        (
            "Hint efficacy by generation".to_string(),
            efficacy_section(ledgers),
        ),
        ("Recent decisions".to_string(), decisions_section(records)),
    ];
    if let Some(text) = metrics_text {
        sections.push(("Metrics scrape".to_string(), metrics_section(text)));
    }
    let intro = format!(
        "reoptimization daemon op-log: {} record(s) spanning t_us {}..{}.",
        records.len(),
        range.0,
        range.1
    );
    html::html_page("apt-serve operator dashboard", &intro, &sections)
}

/// Exports the op-log's request spans as a Chrome trace document: one
/// thread row per trace ID (named with its tenant), plus a queue-depth
/// counter track sampled at every batch drain.
pub fn chrome_trace(records: &[OpRecord]) -> String {
    let mut trace = ChromeTrace::new();
    let mut tids: BTreeMap<u64, u32> = BTreeMap::new();
    for r in records {
        match &r.kind {
            OpKind::Span {
                trace: id,
                tenant,
                stage,
                start_us,
                dur_us,
            } => {
                let next = tids.len() as u32 + 1;
                let tid = *tids.entry(*id).or_insert_with(|| {
                    trace.name_thread(next, &format!("trace {} ({tenant})", trace_hex(*id)));
                    next
                });
                trace.push_span_at(
                    &Span {
                        name: stage.name().to_string(),
                        depth: 0,
                        start_us: *start_us,
                        wall_us: *dur_us,
                        sim_cycles: 0,
                        detail: vec![("tenant".to_string(), tenant.clone())],
                    },
                    tid,
                    *start_us,
                );
            }
            OpKind::Batch { queue_depth, .. } => {
                trace.push_counter("queue_depth", r.t_us, *queue_depth, 0);
            }
            _ => {}
        }
    }
    trace.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplog::{ReoptOutcome, Stage};

    fn demo_records() -> Vec<OpRecord> {
        let mut seq = 0u64;
        let mut rec = |t_us: u64, kind: OpKind| {
            seq += 1;
            OpRecord { seq, t_us, kind }
        };
        let span = |trace: u64, stage: Stage, start_us: u64, dur_us: u64| OpKind::Span {
            trace,
            tenant: "BFS".to_string(),
            stage,
            start_us,
            dur_us,
        };
        vec![
            rec(0, OpKind::ConnOpen { conn: 1 }),
            rec(10, span(0xA1, Stage::Parse, 10, 5)),
            rec(15, span(0xA1, Stage::Queue, 15, 3)),
            rec(
                18,
                OpKind::Batch {
                    jobs: 1,
                    tenants: 1,
                    queue_depth: 0,
                },
            ),
            rec(18, span(0xA1, Stage::Commit, 18, 4)),
            rec(22, span(0xA1, Stage::Drift, 22, 2)),
            rec(
                24,
                OpKind::Drift {
                    trace: 0xA1,
                    tenant: "BFS".to_string(),
                    label: "e2".to_string(),
                    max_tv: 0.9375,
                    exceeded: true,
                },
            ),
            rec(25, span(0xA1, Stage::Reopt, 25, 6)),
            rec(31, span(0xA1, Stage::Swap, 31, 1)),
            rec(
                32,
                OpKind::Swap {
                    trace: 0xA1,
                    tenant: "BFS".to_string(),
                    generation: 1,
                    bytes: 64,
                    note: "drift max_tv=0.9375".to_string(),
                },
            ),
            rec(
                33,
                OpKind::Reopt {
                    trace: 0xA1,
                    tenant: "BFS".to_string(),
                    outcome: ReoptOutcome::Swapped,
                    generation: 1,
                    detail: "drift max_tv=0.9375".to_string(),
                },
            ),
            rec(
                34,
                OpKind::Epoch {
                    trace: 0xA1,
                    tenant: "BFS".to_string(),
                    label: "e2".to_string(),
                    outcome: EpochOutcome::Accepted,
                    detail: String::new(),
                },
            ),
            rec(40, OpKind::ConnClose { conn: 1 }),
        ]
    }

    fn demo_ledger() -> EfficacyLedger {
        use apt_ingest::AggregateProfile;
        let tagged = |issued: u64, timely: u64| {
            let mut a = AggregateProfile {
                instructions: 1_000,
                cycles: 2_000,
                ..AggregateProfile::default()
            };
            a.pf_outcomes.insert(
                0x400300,
                apt_trace::PcOutcomes {
                    issued,
                    timely,
                    late: issued - timely,
                    timely_slack_cycles: timely * 100,
                    late_head_start_cycles: (issued - timely) * 40,
                    ..apt_trace::PcOutcomes::default()
                },
            );
            a
        };
        let mut ledger = EfficacyLedger::default();
        ledger.record_epoch(GEN_BASELINE, &AggregateProfile::default());
        ledger.record_epoch(1, &tagged(32, 30));
        ledger.record_epoch(2, &tagged(32, 4));
        ledger.generations.get_mut(&2).unwrap().rolled_back = true;
        ledger
    }

    #[test]
    fn dashboard_is_self_contained_and_deterministic() {
        let records = demo_records();
        let ledgers = [("BFS".to_string(), demo_ledger())];
        let page = render_dashboard(&records, None, &ledgers);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("BFS"));
        assert!(page.contains("gen 1"));
        assert!(page.contains("drift exceeded"));
        assert!(!page.contains("http"), "external reference leaked");
        assert_eq!(page, render_dashboard(&records, None, &ledgers));
    }

    #[test]
    fn efficacy_section_diffs_generations() {
        let page = render_dashboard(&[], None, &[("BFS".to_string(), demo_ledger())]);
        assert!(page.contains("Hint efficacy by generation"));
        assert!(page.contains("baseline"));
        // gen 1 keeps its strong timely share; gen 2 regressed and shows
        // the rollback state.
        assert!(page.contains("0.9375"));
        assert!(page.contains("0.1250"));
        assert!(page.contains("rolled back"));
        assert!(page.contains("outcome share"));
    }

    #[test]
    fn empty_log_renders_placeholders() {
        let page = render_dashboard(&[], None, &[]);
        assert!(page.contains("no request spans"));
        assert!(page.contains("no drift evaluations"));
        assert!(page.contains("no efficacy ledgers"));
    }

    #[test]
    fn metrics_scrape_joins_the_page() {
        let scrape = "# TYPE apt_serve_connections_total counter\n\
                      apt_serve_connections_total 3\n\
                      # TYPE other_family counter\nother_family 9\n";
        let page = render_dashboard(&demo_records(), Some(scrape), &[]);
        assert!(page.contains("apt_serve_connections_total"));
        assert!(!page.contains("other_family"), "non-serve series filtered");
        let bad = render_dashboard(&demo_records(), Some("{{nonsense"), &[]);
        assert!(bad.contains("did not parse"));
    }

    #[test]
    fn chrome_trace_has_one_row_per_trace_and_a_counter_track() {
        let json = chrome_trace(&demo_records());
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("trace 00000000000000a1 (BFS)"));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"name\":\"queue_depth\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert_eq!(json, chrome_trace(&demo_records()));
    }
}
