//! Property tests for the analytical model (§3.2): CWT peak detection
//! must recover the latency components of synthetic distributions, and
//! Eq. 1 must behave monotonically.
//!
//! These pin down the *shape* of the model rather than single examples:
//! every case builds a fresh synthetic latency population, so regressions
//! in binning, smoothing, or peak ranking show up as recovery error
//! rather than as an off-by-one in one golden value.

use apt_profile::model::{eq1_distance, latency_peaks};
use apt_profile::{AnalysisConfig, Histogram, PeakSummary};
use proptest::prelude::*;

/// Builds the model's view of a synthetic latency population: the same
/// histogram + smoothing the pipeline applies before peak detection.
fn model_hist(latencies: &[u64], cfg: &AnalysisConfig) -> Histogram {
    Histogram::build(latencies, cfg.hist_bins, 0.995)
        .expect("non-empty population")
        .smoothed(cfg.smoothing)
}

/// A bimodal population: `hits` iterations around `ic` (all caches hit)
/// and `misses` iterations around `ic + mc` (served from DRAM), each with
/// deterministic ±2-cycle jitter.
fn bimodal(ic: u64, mc: u64, hits: u64, misses: u64) -> Vec<u64> {
    let jitter = |i: u64| i % 5; // 0..=4, centred at +2.
    let mut lats = Vec::with_capacity((hits + misses) as usize);
    lats.extend((0..hits).map(|i| ic - 2 + jitter(i)));
    lats.extend((0..misses).map(|i| ic + mc - 2 + jitter(i)));
    lats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CWT recovery: from a synthetic bimodal latency histogram the model
    /// must recover both `IC_latency` and `MC_latency` within binning
    /// tolerance, and Eq. 1 must then land near `MC / IC`.
    #[test]
    fn cwt_recovers_bimodal_latency_components(
        ic in 20u64..80,
        mc in 100u64..1200,
        hit_share in 3u64..8, // hits = share×100, misses = 400.
    ) {
        let cfg = AnalysisConfig::default();
        let lats = bimodal(ic, mc, hit_share * 100, 400);
        let hist = model_hist(&lats, &cfg);
        let peaks = latency_peaks(&hist, &cfg);

        prop_assert!(
            peaks.len() >= 2,
            "expected both modes as peaks, got {peaks:?} (ic={ic}, mc={mc})"
        );

        // Tolerance: the peak sits on a bin centre, smoothing can shift it
        // by a bin or two, and the jitter adds ±2 cycles.
        let tol = 3 * hist.bin_width + 4;
        let lo = peaks.first().unwrap().latency;
        let hi = peaks.iter().map(|p| p.latency).max().unwrap();
        prop_assert!(
            lo.abs_diff(ic) <= tol,
            "IC peak at {lo}, expected ≈{ic} (±{tol})"
        );
        prop_assert!(
            hi.abs_diff(ic + mc) <= tol,
            "miss peak at {hi}, expected ≈{} (±{tol})", ic + mc
        );

        let (ic_d, mc_d, distance) = eq1_distance(&peaks, &cfg);
        prop_assert!(ic_d > 0.0 && mc_d > 0.0);
        // Eq. 1 on the recovered components must approximate the true
        // ratio: distance error is bounded by the component tolerances.
        let want = mc as f64 / ic as f64;
        let got = distance as f64;
        prop_assert!(
            (got - want).abs() <= want * 0.35 + 1.5,
            "distance {got} too far from MC/IC = {want:.2} (ic={ic}, mc={mc})"
        );
    }

    /// Eq. 1 monotonicity: with `IC_latency` fixed, a larger `MC_latency`
    /// never yields a *smaller* prefetch distance (a violation would mean
    /// slower memory asks for less lookahead).
    #[test]
    fn eq1_distance_is_monotone_in_mc(
        ic in 1u64..200,
        mc in 0u64..100_000,
        extra in 0u64..100_000,
    ) {
        let cfg = AnalysisConfig::default();
        let peaks_at = |mc: u64| vec![
            PeakSummary { latency: ic, mass: 0.6 },
            PeakSummary { latency: ic + mc, mass: 0.4 },
        ];
        let (_, _, d1) = eq1_distance(&peaks_at(mc), &cfg);
        let (_, _, d2) = eq1_distance(&peaks_at(mc + extra), &cfg);
        prop_assert!(
            d1 <= d2,
            "distance shrank from {d1} to {d2} when MC grew {mc} → {}", mc + extra
        );
        // Distances always respect the paper's clamp.
        prop_assert!((1..=cfg.max_distance).contains(&d1));
        prop_assert!((1..=cfg.max_distance).contains(&d2));
    }

    /// Eq. 1 exactness away from the clamp: with two clean peaks the
    /// distance is literally `round(MC / IC)`.
    #[test]
    fn eq1_distance_matches_the_paper_formula(
        ic in 1u64..100,
        mc in 1u64..10_000,
    ) {
        let cfg = AnalysisConfig::default();
        let peaks = vec![
            PeakSummary { latency: ic, mass: 0.5 },
            PeakSummary { latency: ic + mc, mass: 0.5 },
        ];
        let (ic_d, mc_d, distance) = eq1_distance(&peaks, &cfg);
        prop_assert_eq!(ic_d, ic as f64);
        prop_assert_eq!(mc_d, mc as f64);
        let want = ((mc as f64 / ic as f64).round() as u64).clamp(1, cfg.max_distance);
        prop_assert_eq!(distance, want);
    }
}
