//! Property tests for the weighted cross-run merge: a latency
//! distribution sharded across any number of short runs and merged back
//! must be indistinguishable from one long run — down to the exact
//! histogram the analytical model consumes.

use apt_profile::{Histogram, LatencySketch};
use proptest::prelude::*;

fn assert_hist_eq(a: &Histogram, b: &Histogram) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.min, b.min);
    prop_assert_eq!(a.bin_width, b.bin_width);
    prop_assert_eq!(&a.counts, &b.counts);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging the sketches of k random shards equals the sketch of the
    /// concatenated samples, and both yield bit-identical histograms.
    #[test]
    fn shard_merge_equals_concatenation(
        values in prop::collection::vec(1u64..4000, 1..300),
        cuts in prop::collection::vec(0usize..300, 0..6),
        bins in 1usize..128,
    ) {
        // Split `values` at the (sorted, clamped) cut points.
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c.min(values.len())).collect();
        cuts.sort_unstable();
        let mut shards: Vec<&[u64]> = Vec::new();
        let mut prev = 0usize;
        for &c in &cuts {
            shards.push(&values[prev..c]);
            prev = c;
        }
        shards.push(&values[prev..]);

        let mut merged = LatencySketch::new();
        for shard in &shards {
            merged.merge(&LatencySketch::from_values(shard));
        }
        let direct = LatencySketch::from_values(&values);
        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.total(), values.len() as u64);

        // The merged sketch reproduces Histogram::build on the
        // concatenated samples exactly, at any bin count and clip.
        for clip in [1.0, 0.995, 0.5] {
            let from_samples = Histogram::build(&values, bins, clip).expect("non-empty");
            let from_sketch = merged.to_histogram(bins, clip).expect("non-empty");
            assert_hist_eq(&from_samples, &from_sketch)?;
        }
    }

    /// Merge order never matters: left fold and right fold agree.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(1u64..500, 0..60),
        b in prop::collection::vec(1u64..500, 0..60),
        c in prop::collection::vec(1u64..500, 0..60),
    ) {
        let (sa, sb, sc) = (
            LatencySketch::from_values(&a),
            LatencySketch::from_values(&b),
            LatencySketch::from_values(&c),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
    }
}
