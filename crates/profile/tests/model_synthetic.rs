//! Model tests on *synthetic* LBR streams with known ground truth: if a
//! loop takes IC cycles when hitting and IC+MC when missing, the analysis
//! must recover distance ≈ MC/IC.

use apt_cpu::{LbrEntry, LbrSample, PebsRecord, ProfileData};
use apt_lir::{FunctionBuilder, Module, Operand, Pc, Width};
use apt_mem::Level;
use apt_passes::Site;
use apt_profile::{analyze, AnalysisConfig};
use proptest::prelude::*;

/// Builds `for i { v = T[B[i]] }` and returns (module, load pc, back-edge
/// branch pc).
fn simple_loop() -> (Module, Pc, Pc) {
    let mut m = Module::new("t");
    let f = m.add_function("k", &["t", "b", "n"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
        bd.loop_up(0, n, 1, |bd, i| {
            let x = bd.load_elem(bb, i, Width::W4, false);
            let _ = bd.load_elem(t, x, Width::W4, false);
        });
        bd.ret(None::<Operand>);
    }
    let map = m.assign_pcs();
    let loads = apt_passes::inject::detect_indirect_loads(&m);
    let (fid, load) = loads[0];
    let load_pc = map.pc_of(apt_lir::InstRef {
        func: fid,
        block: load.0,
        inst: load.1,
    });
    let branch_pc = map.term_pc(fid, load.0);
    (m, load_pc, branch_pc)
}

/// Synthesises LBR samples for a loop whose iterations take `ic` cycles,
/// with every `miss_every`-th iteration taking `ic + mc`.
fn synth_profile(
    load_pc: Pc,
    branch_pc: Pc,
    ic: u64,
    mc: u64,
    miss_every: u64,
    samples: usize,
) -> ProfileData {
    let mut profile = ProfileData::default();
    let mut cycle = 0u64;
    let mut iter = 0u64;
    for _ in 0..samples {
        let mut s: LbrSample = Vec::new();
        for _ in 0..apt_cpu::LBR_ENTRIES {
            iter += 1;
            cycle += if iter.is_multiple_of(miss_every) {
                ic + mc
            } else {
                ic
            };
            s.push(LbrEntry {
                from: branch_pc,
                to: Pc(branch_pc.0 - 40),
                cycle,
            });
        }
        profile.lbr_samples.push(s);
        cycle += 10_000; // Gap between samples.
    }
    // Plenty of PEBS evidence on the load.
    for i in 0..400 {
        profile.pebs.push(PebsRecord {
            pc: load_pc,
            served: Level::Dram,
            cycle: i * 50,
        });
    }
    profile
}

fn test_cfg() -> AnalysisConfig {
    AnalysisConfig {
        dram_latency_hint: 120,
        min_load_mpki: 0.0, // Synthetic stats: no gating.
        ..AnalysisConfig::default()
    }
}

fn fake_stats() -> apt_cpu::PerfStats {
    apt_cpu::PerfStats {
        instructions: 1_000_000,
        cycles: 2_000_000,
        ..Default::default()
    }
}

#[test]
fn recovers_known_distance() {
    let (m, load_pc, branch_pc) = simple_loop();
    let map = m.assign_pcs();
    // IC = 20, MC = 120 → distance 6, misses every 3rd iteration.
    let profile = synth_profile(load_pc, branch_pc, 20, 120, 3, 40);
    let r = analyze(&m, &map, &profile, &fake_stats(), &test_cfg());
    assert_eq!(r.hints.len(), 1, "{:?}", r.notes);
    let h = &r.hints[0];
    assert_eq!(h.site, Site::Inner, "single loop");
    assert!(
        (4..=8).contains(&h.distance),
        "expected ≈6, got {} (IC {:.1}, MC {:.1})",
        h.distance,
        h.ic_latency,
        h.mc_latency
    );
}

#[test]
fn all_miss_loop_uses_dram_hint() {
    let (m, load_pc, branch_pc) = simple_loop();
    let map = m.assign_pcs();
    // Every iteration misses: single peak at 20 + 120.
    let profile = synth_profile(load_pc, branch_pc, 20, 120, 1, 40);
    let r = analyze(&m, &map, &profile, &fake_stats(), &test_cfg());
    assert_eq!(r.hints.len(), 1);
    let h = &r.hints[0];
    assert!(
        (3..=12).contains(&h.distance),
        "hint distance {} from single-peak fallback",
        h.distance
    );
}

#[test]
fn sparse_lbr_falls_back_to_distance_one() {
    let (m, load_pc, branch_pc) = simple_loop();
    let map = m.assign_pcs();
    let mut profile = synth_profile(load_pc, branch_pc, 20, 120, 3, 1);
    profile.lbr_samples[0].truncate(2); // Almost no latency evidence.
    let r = analyze(&m, &map, &profile, &fake_stats(), &test_cfg());
    assert_eq!(r.hints.len(), 1);
    assert_eq!(r.hints[0].distance, 1, "§3.6 fallback");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 1 recovery within a factor of two across a range of IC/MC.
    #[test]
    fn distance_tracks_ic_mc_ratio(ic in 10u64..60, mc_mult in 2u64..10) {
        let (m, load_pc, branch_pc) = simple_loop();
        let map = m.assign_pcs();
        let mc = ic * mc_mult;
        let profile = synth_profile(load_pc, branch_pc, ic, mc, 3, 40);
        let r = analyze(&m, &map, &profile, &fake_stats(), &test_cfg());
        prop_assert_eq!(r.hints.len(), 1);
        let d = r.hints[0].distance;
        let ideal = mc_mult;
        prop_assert!(
            d >= ideal / 2 && d <= ideal * 2 + 1,
            "ic {} mc {} → distance {} (ideal {})", ic, mc, d, ideal
        );
    }
}
