//! Hint-file round-trip golden tests (§3.4's textual artefact).
//!
//! The AutoFDO deployment model (§3.6) stores hint files and re-resolves
//! them against later builds, so `parse(serialize(x)) == x` must hold
//! *structurally* — including full-precision shares and the §3 fallback
//! metadata (outer-site hints carry `fallback_inner_distance` so
//! injection can degrade gracefully on loops whose structure changed).
//! A fixed-precision share format used to violate exactly this.

use apt_lir::{FunctionBuilder, ICmpPred, Module, Operand, Pc, Width};
use apt_passes::Site;
use apt_profile::hintfile::{parse, resolve_all, serialize, HintRecord, HEADER};

/// Records exercising the tricky corners: full-precision shares that a
/// `{:.4}`-style format would corrupt, fallback present and absent, and
/// extreme-but-legal values.
fn awkward_records() -> Vec<HintRecord> {
    vec![
        HintRecord {
            pc: Pc(0x40_0024),
            distance: 10,
            site: Site::Inner,
            fanout: 1,
            fallback_inner_distance: Some(10),
            share: 1.0 / 3.0,
        },
        HintRecord {
            pc: Pc(0x40_00c0),
            distance: 2,
            site: Site::Outer,
            fanout: 8,
            fallback_inner_distance: Some(3),
            share: 0.1 + 0.2, // 0.30000000000000004 — must survive.
        },
        HintRecord {
            pc: Pc(u64::MAX),
            distance: 1024,
            site: Site::Outer,
            fanout: 1,
            fallback_inner_distance: None,
            share: 2f64.powi(-14), // Exact binary fraction, long decimal.
        },
    ]
}

#[test]
fn serialization_matches_the_golden_text() {
    let text = serialize(&awkward_records());
    let golden = format!(
        "{HEADER}\n\
         pc=0x400024 distance=10 site=inner fanout=1 fallback=10 share=0.3333333333333333\n\
         pc=0x4000c0 distance=2 site=outer fanout=8 fallback=3 share=0.30000000000000004\n\
         pc=0xffffffffffffffff distance=1024 site=outer fanout=1 fallback=- share=0.00006103515625\n"
    );
    assert_eq!(text, golden);
}

#[test]
fn round_trip_is_structurally_exact() {
    let records = awkward_records();
    let parsed = parse(&serialize(&records)).expect("own output parses");
    assert_eq!(parsed, records, "serialize → parse must be the identity");
    // Idempotence: a second trip changes nothing either.
    assert_eq!(serialize(&parsed), serialize(&records));
}

/// A module with the loop shapes that force the §3 fallback paths: a
/// non-canonical induction (step 4, so distance scaling cannot assume
/// `iv + d`) and a multi-exit loop (early break on a sentinel value, so
/// the loop has two exit edges and no unique latch-dominated exit).
fn tricky_module() -> Module {
    let mut m = Module::new("tricky");

    // Non-canonical induction: for (i = 0; i < n; i += 4) sum += t[b[i]].
    let f = m.add_function("stride4", &["t", "b", "n"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
        let sum = bd.loop_up_reduce(0u64, n, 4, 0u64, |bd, iv, acc| {
            let x = bd.load_elem(b, iv, Width::W4, false);
            let v = bd.load_elem(t, x, Width::W4, false);
            bd.add(acc, v).into()
        });
        bd.ret(Some(sum));
    }

    // Multi-exit: while (i < n) { v = t[b[i]]; if (v == 7) return i; i++ }
    // Bottom-tested with an entry guard (the canonical shape the loop
    // analysis recognises) plus the early `found` exit from mid-body —
    // two exit edges, which is what forces the §3.5 handling.
    let f = m.add_function("find7", &["t", "b", "n"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
        let body = bd.new_block("body");
        let latch = bd.new_block("latch");
        let found = bd.new_block("found");
        let exit = bd.new_block("exit");

        let entry = bd.current_block();
        let nonempty = bd.icmp(ICmpPred::Ltu, 0u64, n);
        bd.cond_br(nonempty, body, exit);

        bd.switch_to(body);
        let (iv, iv_phi) = bd.phi_placeholder();
        let x = bd.load_elem(b, iv, Width::W4, false);
        let v = bd.load_elem(t, x, Width::W4, false);
        let hit = bd.icmp(ICmpPred::Eq, v, 7u64);
        bd.cond_br(hit, found, latch);

        bd.switch_to(latch);
        let next = bd.add(iv, 1u64);
        let more = bd.icmp(ICmpPred::Ltu, next, n);
        bd.set_phi_incomings(
            iv_phi,
            vec![(entry, Operand::from(0u64)), (latch, next.into())],
        );
        bd.cond_br(more, body, exit);

        bd.switch_to(found);
        bd.ret(Some(iv));
        bd.switch_to(exit);
        bd.ret(Some(n));
    }
    m
}

#[test]
fn pipeline_shaped_records_survive_the_trip_and_still_resolve() {
    let m = tricky_module();
    let map = m.assign_pcs();
    let loads = apt_passes::inject::detect_indirect_loads(&m);
    assert!(
        loads.len() >= 2,
        "expected the indirect loads of both tricky loops, got {}",
        loads.len()
    );

    // One record per detected load, shaped like the §3 fallback cases:
    // outer-site with an inner fallback for the stride-4 loop, inner-site
    // for the multi-exit loop.
    let records: Vec<HintRecord> = loads
        .iter()
        .enumerate()
        .map(|(i, &(func, load))| HintRecord {
            pc: map.pc_of(apt_lir::InstRef {
                func,
                block: load.0,
                inst: load.1,
            }),
            distance: 3 + i as u64,
            site: if i % 2 == 0 { Site::Outer } else { Site::Inner },
            fanout: if i % 2 == 0 { 8 } else { 1 },
            fallback_inner_distance: if i % 2 == 0 {
                Some(12 + i as u64)
            } else {
                None
            },
            share: 1.0 / (i as f64 + 3.0),
        })
        .collect();

    let reparsed = parse(&serialize(&records)).expect("parses");
    assert_eq!(reparsed, records);

    // Resolution must agree before and after the trip: same specs, with
    // the fallback metadata intact.
    let (specs_direct, dropped_direct) = resolve_all(&records, &m);
    let (specs_trip, dropped_trip) = resolve_all(&reparsed, &m);
    assert_eq!(dropped_direct, 0, "all PCs come from this module's map");
    assert_eq!(dropped_trip, 0);
    assert_eq!(specs_direct.len(), specs_trip.len());
    for (a, b) in specs_direct.iter().zip(&specs_trip) {
        assert_eq!(a.func, b.func);
        assert_eq!(a.load, b.load);
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.site, b.site);
        assert_eq!(a.fanout, b.fanout);
        assert_eq!(a.fallback_inner_distance, b.fallback_inner_distance);
    }
}
