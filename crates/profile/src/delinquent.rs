//! Ranking delinquent loads from PEBS samples (§3.2, step 1).

use apt_cpu::PebsRecord;
use apt_lir::Pc;

/// A load PC that frequently misses the LLC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelinquentLoad {
    pub pc: Pc,
    /// Number of LLC-miss samples attributed to this PC.
    pub samples: u64,
    /// Fraction of all LLC-miss samples attributed to this PC.
    pub share: f64,
}

/// Aggregates PEBS records into delinquent loads.
///
/// Returns PCs covering at least `min_share` of all LLC-miss samples,
/// most-delinquent first, at most `max_loads` of them. This mirrors the
/// paper's use of "loads that cause frequent LLC misses" [39].
pub fn rank_delinquent_loads(
    records: &[PebsRecord],
    min_share: f64,
    max_loads: usize,
) -> Vec<DelinquentLoad> {
    if records.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<(Pc, u64)> = Vec::new();
    for r in records {
        match counts.iter_mut().find(|(pc, _)| *pc == r.pc) {
            Some((_, n)) => *n += 1,
            None => counts.push((r.pc, 1)),
        }
    }
    let total = records.len() as f64;
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
        .into_iter()
        .map(|(pc, n)| DelinquentLoad {
            pc,
            samples: n,
            share: n as f64 / total,
        })
        .filter(|d| d.share >= min_share)
        .take(max_loads)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_mem::Level;

    fn rec(pc: u64) -> PebsRecord {
        PebsRecord {
            pc: Pc(pc),
            served: Level::Dram,
            cycle: 0,
        }
    }

    #[test]
    fn ranks_by_frequency() {
        let mut rs = vec![];
        rs.extend(std::iter::repeat_n(rec(0x100), 70));
        rs.extend(std::iter::repeat_n(rec(0x200), 25));
        rs.extend(std::iter::repeat_n(rec(0x300), 5));
        let d = rank_delinquent_loads(&rs, 0.10, 10);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].pc, Pc(0x100));
        assert!((d[0].share - 0.70).abs() < 1e-12);
        assert_eq!(d[1].pc, Pc(0x200));
    }

    #[test]
    fn caps_the_list() {
        let mut rs = vec![];
        for i in 0..20u64 {
            rs.extend(std::iter::repeat_n(rec(0x100 + i * 4), 5));
        }
        let d = rank_delinquent_loads(&rs, 0.0, 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(rank_delinquent_loads(&[], 0.01, 10).is_empty());
    }

    #[test]
    fn ties_break_by_pc_for_determinism() {
        let rs = vec![rec(0x200), rec(0x100)];
        let d = rank_delinquent_loads(&rs, 0.0, 10);
        assert_eq!(d[0].pc, Pc(0x100));
    }
}
