//! The hint-file format: the textual interface between the profiling step
//! and the compiler pass.
//!
//! §3.4: "The result of our automated approach is a list of delinquent
//! load PCs with their corresponding prefetch-distance and prefetch
//! injection site which can be consumed by the LLVM software prefetching
//! pass." This module implements exactly that artefact, so a profile can
//! be collected once, stored, and consumed by later compilations (the
//! AutoFDO deployment model of §3.6).
//!
//! Format: one record per line,
//!
//! ```text
//! # apt-get hints v1
//! pc=0x400024 distance=10 site=inner fanout=1 fallback=10 share=0.91
//! pc=0x4000c0 distance=2 site=outer fanout=8 fallback=3 share=0.05
//! ```
//!
//! Lines starting with `#` are comments. Unknown keys are ignored
//! (forward compatibility); missing optional keys take defaults.

use apt_lir::pcmap::Location;
use apt_lir::{AddressMap, Module, Pc};
use apt_passes::Site;

use crate::model::LoadHint;

/// Magic first line of a hint file.
pub const HEADER: &str = "# apt-get hints v1";

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hint file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One serialisable hint record (the PC-keyed subset of [`LoadHint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintRecord {
    pub pc: Pc,
    pub distance: u64,
    pub site: Site,
    pub fanout: u64,
    pub fallback_inner_distance: Option<u64>,
    pub share: f64,
}

impl HintRecord {
    /// Builds a record from an analysis hint.
    pub fn from_hint(h: &LoadHint) -> HintRecord {
        HintRecord {
            pc: h.pc,
            distance: h.distance,
            site: h.site,
            fanout: h.fanout,
            fallback_inner_distance: h.inner_distance,
            share: h.share,
        }
    }

    /// Resolves the record against a module layout, yielding an injection
    /// spec — the PC → IR step the paper borrows from AutoFDO.
    pub fn resolve(&self, map: &AddressMap) -> Option<apt_passes::InjectionSpec> {
        match map.resolve(self.pc) {
            Some(Location::Inst(iref)) => Some(apt_passes::InjectionSpec {
                func: iref.func,
                load: (iref.block, iref.inst),
                distance: self.distance,
                site: self.site,
                fanout: self.fanout,
                fallback_inner_distance: self.fallback_inner_distance,
            }),
            _ => None,
        }
    }
}

/// Serialises hints to the v1 text format.
pub fn serialize(hints: &[HintRecord]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    // `share` uses Rust's shortest round-trip float formatting: a stored
    // hint file must reparse to *structurally equal* records (the AutoFDO
    // deployment model re-resolves old profiles), and a fixed-precision
    // format silently corrupted shares on the way through.
    for h in hints {
        out.push_str(&format!(
            "pc={:#x} distance={} site={} fanout={} fallback={} share={}\n",
            h.pc.0,
            h.distance,
            match h.site {
                Site::Inner => "inner",
                Site::Outer => "outer",
            },
            h.fanout,
            h.fallback_inner_distance
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            h.share,
        ));
    }
    out
}

/// Serialises an analysis result's hints.
pub fn serialize_hints(hints: &[LoadHint]) -> String {
    let records: Vec<HintRecord> = hints.iter().map(HintRecord::from_hint).collect();
    serialize(&records)
}

/// Parses the v1 text format.
pub fn parse(text: &str) -> Result<Vec<HintRecord>, ParseError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut pc = None;
        let mut distance = None;
        let mut site = None;
        let mut fanout = 1u64;
        let mut fallback = None;
        let mut share = 0.0f64;
        for field in line.split_whitespace() {
            let Some((key, value)) = field.split_once('=') else {
                return Err(ParseError {
                    line: lineno + 1,
                    message: format!("malformed field `{field}`"),
                });
            };
            let bad = |message: String| ParseError {
                line: lineno + 1,
                message,
            };
            match key {
                "pc" => {
                    let hex = value.trim_start_matches("0x");
                    pc = Some(Pc(u64::from_str_radix(hex, 16)
                        .map_err(|e| bad(format!("bad pc `{value}`: {e}")))?));
                }
                "distance" => {
                    distance = Some(
                        value
                            .parse()
                            .map_err(|e| bad(format!("bad distance `{value}`: {e}")))?,
                    );
                }
                "site" => {
                    site = Some(match value {
                        "inner" => Site::Inner,
                        "outer" => Site::Outer,
                        other => return Err(bad(format!("unknown site `{other}`"))),
                    });
                }
                "fanout" => {
                    fanout = value
                        .parse()
                        .map_err(|e| bad(format!("bad fanout `{value}`: {e}")))?;
                }
                "fallback" => {
                    fallback = if value == "-" {
                        None
                    } else {
                        Some(
                            value
                                .parse()
                                .map_err(|e| bad(format!("bad fallback `{value}`: {e}")))?,
                        )
                    };
                }
                "share" => {
                    share = value
                        .parse()
                        .map_err(|e| bad(format!("bad share `{value}`: {e}")))?;
                }
                _ => {} // Forward compatibility: ignore unknown keys.
            }
        }
        let (Some(pc), Some(distance), Some(site)) = (pc, distance, site) else {
            return Err(ParseError {
                line: lineno + 1,
                message: "record needs at least pc, distance and site".into(),
            });
        };
        out.push(HintRecord {
            pc,
            distance,
            site,
            fanout,
            fallback_inner_distance: fallback,
            share,
        });
    }
    Ok(out)
}

/// Resolves a whole hint file against a module, dropping records whose PC
/// no longer maps to an instruction (stale profiles, §3.6) and reporting
/// how many were dropped.
pub fn resolve_all(
    records: &[HintRecord],
    module: &Module,
) -> (Vec<apt_passes::InjectionSpec>, usize) {
    let map = module.assign_pcs();
    let mut specs = Vec::new();
    let mut dropped = 0;
    for r in records {
        match r.resolve(&map) {
            Some(s) => specs.push(s),
            None => dropped += 1,
        }
    }
    (specs, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<HintRecord> {
        vec![
            HintRecord {
                pc: Pc(0x40_0024),
                distance: 10,
                site: Site::Inner,
                fanout: 1,
                fallback_inner_distance: Some(10),
                share: 0.91,
            },
            HintRecord {
                pc: Pc(0x40_00c0),
                distance: 2,
                site: Site::Outer,
                fanout: 8,
                fallback_inner_distance: None,
                share: 0.05,
            },
        ]
    }

    #[test]
    fn round_trips() {
        let text = serialize(&sample());
        assert!(text.starts_with(HEADER));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn ignores_comments_and_unknown_keys() {
        let text = "# comment\npc=0x10 distance=4 site=inner future_key=1\n";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].pc, Pc(0x10));
        assert_eq!(parsed[0].fanout, 1); // Default.
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse("pc=0x10 site=inner\n").is_err()); // No distance.
        assert!(parse("pc=zz distance=1 site=inner\n").is_err());
        assert!(parse("pc=0x10 distance=1 site=sideways\n").is_err());
        assert!(parse("garbage\n").is_err());
        let e = parse("pc=0x10 distance=1 site=sideways\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn resolve_drops_stale_pcs() {
        use apt_lir::{FunctionBuilder, Module, Width};
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_up(0, n, 1, |bd, i| {
                let x = bd.load_elem(bb, i, Width::W4, false);
                let _ = bd.load_elem(t, x, Width::W4, false);
            });
            bd.ret(None::<apt_lir::Operand>);
        }
        let map = m.assign_pcs();
        let loads = apt_passes::inject::detect_indirect_loads(&m);
        let (_, load) = loads[0];
        let real_pc = map.pc_of(apt_lir::InstRef {
            func: apt_lir::FuncId(0),
            block: load.0,
            inst: load.1,
        });
        let records = vec![
            HintRecord {
                pc: real_pc,
                distance: 4,
                site: Site::Inner,
                fanout: 1,
                fallback_inner_distance: None,
                share: 1.0,
            },
            HintRecord {
                pc: Pc(0xdead_0000),
                distance: 4,
                site: Site::Inner,
                fanout: 1,
                fallback_inner_distance: None,
                share: 0.0,
            },
        ];
        let (specs, dropped) = resolve_all(&records, &m);
        assert_eq!(specs.len(), 1);
        assert_eq!(dropped, 1);
        assert_eq!(specs[0].load, load);
    }
}
