//! Extracting loop-iteration latencies and trip counts from LBR samples.
//!
//! A rotated loop retires its back-edge branch once per continuing
//! iteration, so within one LBR snapshot:
//!
//! * the cycle delta between two *adjacent* occurrences of the same branch
//!   PC is one full iteration's execution time (§3.1);
//! * a maximal run of consecutive inner back-edge entries of length `L`
//!   bounds the inner trip count: `L` back-edge takes ⇒ `L + 1` iterations
//!   (Fig. 3).
//!
//! Runs touching the snapshot boundary are discarded — their true length is
//! unknown (§3.6 discusses this 32-entry limitation).

use apt_cpu::{LbrSample, LBR_ENTRIES};
use apt_lir::Pc;

/// Iteration latencies for the loop whose back-edge branch is `branch_pc`,
/// collected across all samples.
pub fn iteration_latencies(samples: &[LbrSample], branch_pc: Pc) -> Vec<u64> {
    iteration_latencies_bounded(samples, branch_pc, None)
}

/// Iteration latencies, discarding deltas that cross an occurrence of
/// `boundary_pc` (the *outer* loop's back edge).
///
/// Without the boundary, a delta between the last back-edge of one inner
/// loop instance and the first back-edge of the next spans a whole outer
/// iteration and pollutes the distribution with a spurious far peak —
/// visible whenever inner trip counts are short.
pub fn iteration_latencies_bounded(
    samples: &[LbrSample],
    branch_pc: Pc,
    boundary_pc: Option<Pc>,
) -> Vec<u64> {
    let mut out = Vec::new();
    for s in samples {
        let mut last: Option<u64> = None;
        for e in s {
            if e.from == branch_pc {
                if let Some(prev) = last {
                    // Adjacent occurrences: one iteration.
                    out.push(e.cycle.saturating_sub(prev));
                }
                last = Some(e.cycle);
            } else if Some(e.from) == boundary_pc {
                // Crossed into the next outer iteration.
                last = None;
            }
            // Other branches (if/else joins) belong to the same iteration.
        }
    }
    out
}

/// Trip-count statistics for the loop whose back-edge is `branch_pc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripCountStats {
    /// Mean trip count over fully observed runs.
    pub mean: f64,
    /// Load-execution-weighted mean trip count, `Σt²/Σt`: the expected
    /// trip count *as seen by a random inner-loop load*. On skewed inputs
    /// (power-law graphs) this is what Eq. 2's coverage argument is about
    /// — most delinquent loads execute in the long loops.
    pub weighted_mean: f64,
    /// Number of fully observed runs.
    pub runs: u64,
    /// Runs that filled the whole 32-entry snapshot (trip count ≥ 32):
    /// when these dominate, the loop is long-running and inner-loop
    /// prefetching is always viable (§3.6).
    pub saturated_runs: u64,
}

impl TripCountStats {
    /// True if there is enough evidence to trust `mean` (and
    /// `weighted_mean`) for the Eq. 2 site decision.
    ///
    /// Two conditions, both derived from how the 32-entry LBR truncates
    /// observations (§3.6):
    ///
    /// * **`runs >= 4`** — each fully observed run is one trip-count
    ///   observation. LBR snapshots are sparse (one per sampling period),
    ///   so small run counts are common for loops that execute rarely;
    ///   below four observations a single unlucky snapshot (e.g. a
    ///   boundary-adjacent short run) would swing the mean by 25 % or
    ///   more, enough to flip Eq. 2's `trip_count < k × distance` test.
    ///   Four is deliberately low: profiles are cheap but sparse, and the
    ///   cost of a wrong "unreliable" verdict is only falling back to the
    ///   conservative inner-loop site.
    /// * **`runs > saturated_runs`** — a *saturated* snapshot (all 32
    ///   entries from one loop) proves the trip count is ≥ 32 but not
    ///   what it is. When saturated snapshots are at least as common as
    ///   fully observed runs, the observed runs are a biased sample of
    ///   the short tail and their mean badly underestimates the true
    ///   trip count; callers should treat the loop as long-running
    ///   instead (inner-loop prefetching is then always viable).
    pub fn reliable(&self) -> bool {
        self.runs >= 4 && self.runs > self.saturated_runs
    }
}

/// Measures inner-loop trip counts: maximal runs of consecutive entries
/// with `from == branch_pc`, strictly inside a snapshot.
pub fn trip_counts(samples: &[LbrSample], branch_pc: Pc) -> TripCountStats {
    let mut total = 0u64;
    let mut total_sq = 0u64;
    let mut runs = 0u64;
    let mut saturated = 0u64;
    for s in samples {
        let mut run = 0u64;
        let mut started_at_boundary = true; // Run begins at snapshot start?
        for e in s {
            if e.from == branch_pc {
                run += 1;
            } else {
                if run > 0 && !started_at_boundary {
                    let t = run + 1; // L back-edges ⇒ L+1 iterations.
                    total += t;
                    total_sq += t * t;
                    runs += 1;
                }
                run = 0;
                started_at_boundary = false;
            }
        }
        if run > 0 {
            // The run touches the end of the snapshot.
            if run as usize >= LBR_ENTRIES {
                saturated += 1;
            }
            // Otherwise: truncated, length unknown — discard.
        }
    }
    TripCountStats {
        mean: if runs > 0 {
            total as f64 / runs as f64
        } else {
            0.0
        },
        weighted_mean: if total > 0 {
            total_sq as f64 / total as f64
        } else {
            0.0
        },
        runs,
        saturated_runs: saturated,
    }
}

/// Measures inner-loop trip counts the way Fig. 3 describes: count the
/// inner back-edge PCs *between* two consecutive occurrences of the outer
/// loop's branch PC. Robust to other taken branches (if/else bodies)
/// interleaving with the back-edge entries.
pub fn trip_counts_between(samples: &[LbrSample], inner_pc: Pc, outer_pc: Pc) -> TripCountStats {
    let mut total = 0u64;
    let mut total_sq = 0u64;
    let mut runs = 0u64;
    let mut saturated = 0u64;
    for s in samples {
        let mut inner_since: Option<u64> = None;
        let mut any_outer = false;
        for e in s {
            if e.from == outer_pc {
                if let Some(n) = inner_since {
                    let t = n + 1; // n back-edges ⇒ n+1 inner iterations.
                    total += t;
                    total_sq += t * t;
                    runs += 1;
                }
                inner_since = Some(0);
                any_outer = true;
            } else if e.from == inner_pc {
                if let Some(n) = inner_since.as_mut() {
                    *n += 1;
                }
            }
        }
        if !any_outer && s.iter().filter(|e| e.from == inner_pc).count() >= LBR_ENTRIES / 2 {
            // The whole snapshot is inside the inner loop: trip count is
            // too large to observe (§3.6).
            saturated += 1;
        }
    }
    TripCountStats {
        mean: if runs > 0 {
            total as f64 / runs as f64
        } else {
            0.0
        },
        weighted_mean: if total > 0 {
            total_sq as f64 / total as f64
        } else {
            0.0
        },
        runs,
        saturated_runs: saturated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::LbrEntry;

    fn e(from: u64, cycle: u64) -> LbrEntry {
        LbrEntry {
            from: Pc(from),
            to: Pc(from + 4),
            cycle,
        }
    }

    #[test]
    fn latencies_from_adjacent_occurrences() {
        let s: LbrSample = vec![e(0x100, 10), e(0x100, 40), e(0x100, 75)];
        let lats = iteration_latencies(&[s], Pc(0x100));
        assert_eq!(lats, vec![30, 35]);
    }

    #[test]
    fn other_branches_do_not_split_iterations() {
        // Outer loop (0x200) with inner back-edges (0x100) in between.
        let s: LbrSample = vec![
            e(0x200, 10),
            e(0x100, 20),
            e(0x100, 30),
            e(0x200, 50),
            e(0x100, 60),
            e(0x200, 95),
        ];
        let outer = iteration_latencies(std::slice::from_ref(&s), Pc(0x200));
        assert_eq!(outer, vec![40, 45]);
        let inner = iteration_latencies(&[s], Pc(0x100));
        // 30−20 = 10 (adjacent); 60−30 crosses an outer iteration and is
        // also reported — callers see it as part of the distribution's
        // tail. The dominant mass is the true iteration time.
        assert_eq!(inner, vec![10, 30]);
    }

    #[test]
    fn no_occurrences_is_empty() {
        let s: LbrSample = vec![e(0x200, 10)];
        assert!(iteration_latencies(&[s], Pc(0x999)).is_empty());
    }

    #[test]
    fn trip_count_from_interior_runs() {
        // Boundary run (discarded), then 3 inner back-edges (trip 4),
        // then 1 (trip 2).
        let s: LbrSample = vec![
            e(0x100, 0), // Starts at the boundary → discarded.
            e(0x200, 1),
            e(0x100, 2),
            e(0x100, 3),
            e(0x100, 4),
            e(0x200, 5),
            e(0x100, 6),
            e(0x200, 7),
        ];
        let t = trip_counts(&[s], Pc(0x100));
        assert_eq!(t.runs, 2);
        assert!((t.mean - 3.0).abs() < 1e-12); // (4 + 2) / 2.
        assert_eq!(t.saturated_runs, 0);
        assert!(!t.reliable()); // Only 2 runs.
    }

    #[test]
    fn saturated_snapshot_detected() {
        let s: LbrSample = (0..LBR_ENTRIES as u64).map(|i| e(0x100, i)).collect();
        let t = trip_counts(&[s], Pc(0x100));
        assert_eq!(t.runs, 0);
        assert_eq!(t.saturated_runs, 1);
        assert!(!t.reliable());
    }

    #[test]
    fn reliability_needs_enough_runs() {
        let mk = || -> LbrSample { vec![e(0x200, 0), e(0x100, 1), e(0x100, 2), e(0x200, 3)] };
        let samples: Vec<LbrSample> = (0..4).map(|_| mk()).collect();
        let t = trip_counts(&samples, Pc(0x100));
        assert_eq!(t.runs, 4);
        assert!((t.mean - 3.0).abs() < 1e-12);
        assert!(t.reliable());
    }

    #[test]
    fn reliability_threshold_is_exactly_four_runs() {
        // Both sides of the `runs >= 4` threshold: three observations of
        // the same loop are not enough, the fourth tips it over.
        let mk = || -> LbrSample { vec![e(0x200, 0), e(0x100, 1), e(0x100, 2), e(0x200, 3)] };
        let three: Vec<LbrSample> = (0..3).map(|_| mk()).collect();
        assert_eq!(trip_counts(&three, Pc(0x100)).runs, 3);
        assert!(!trip_counts(&three, Pc(0x100)).reliable());
        let four: Vec<LbrSample> = (0..4).map(|_| mk()).collect();
        assert!(trip_counts(&four, Pc(0x100)).reliable());
    }

    #[test]
    fn saturation_majority_defeats_reliability() {
        // Both sides of `runs > saturated_runs`: with as many saturated
        // snapshots as observed runs, the observed runs are a biased
        // sample of the short tail — unreliable. One fewer saturated
        // snapshot and the verdict flips.
        let observed = || -> LbrSample { vec![e(0x200, 0), e(0x100, 1), e(0x100, 2), e(0x200, 3)] };
        let saturated = || -> LbrSample { (0..LBR_ENTRIES as u64).map(|i| e(0x100, i)).collect() };
        let mut samples: Vec<LbrSample> = (0..4).map(|_| observed()).collect();
        samples.extend((0..4).map(|_| saturated()));
        let t = trip_counts(&samples, Pc(0x100));
        assert_eq!((t.runs, t.saturated_runs), (4, 4));
        assert!(!t.reliable());

        samples.pop();
        let t = trip_counts(&samples, Pc(0x100));
        assert_eq!((t.runs, t.saturated_runs), (4, 3));
        assert!(t.reliable());
    }

    #[test]
    fn truncated_tail_run_is_discarded() {
        let s: LbrSample = vec![e(0x200, 0), e(0x100, 1), e(0x100, 2)];
        let t = trip_counts(&[s], Pc(0x100));
        assert_eq!(t.runs, 0);
        assert_eq!(t.saturated_runs, 0);
    }
}

#[cfg(test)]
mod between_tests {
    use super::*;
    use apt_cpu::LbrEntry;

    fn e(from: u64, cycle: u64) -> LbrEntry {
        LbrEntry {
            from: Pc(from),
            to: Pc(from + 4),
            cycle,
        }
    }

    #[test]
    fn counts_inner_between_outer() {
        // outer, 3×inner, outer, 1×inner, outer.
        let s: LbrSample = vec![
            e(0x200, 0),
            e(0x100, 1),
            e(0x100, 2),
            e(0x100, 3),
            e(0x200, 4),
            e(0x100, 5),
            e(0x200, 6),
        ];
        let t = trip_counts_between(&[s], Pc(0x100), Pc(0x200));
        assert_eq!(t.runs, 2);
        assert!((t.mean - 3.0).abs() < 1e-12); // (4 + 2) / 2.
    }

    #[test]
    fn interleaved_other_branches_do_not_break_counting() {
        // if/else branch 0x300 interleaves with the back-edge.
        let s: LbrSample = vec![
            e(0x200, 0),
            e(0x300, 1),
            e(0x100, 2),
            e(0x300, 3),
            e(0x100, 4),
            e(0x200, 5),
        ];
        let t = trip_counts_between(&[s], Pc(0x100), Pc(0x200));
        assert_eq!(t.runs, 1);
        assert!((t.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_without_outer_occurrences() {
        let s: LbrSample = (0..LBR_ENTRIES as u64).map(|i| e(0x100, i)).collect();
        let t = trip_counts_between(&[s], Pc(0x100), Pc(0x200));
        assert_eq!(t.runs, 0);
        assert_eq!(t.saturated_runs, 1);
        assert!(!t.reliable());
    }

    #[test]
    fn leading_inner_entries_before_first_outer_are_discarded() {
        let s: LbrSample = vec![
            e(0x100, 0),
            e(0x100, 1),
            e(0x200, 2),
            e(0x100, 3),
            e(0x200, 4),
        ];
        let t = trip_counts_between(&[s], Pc(0x100), Pc(0x200));
        // Only the fully bracketed interval counts.
        assert_eq!(t.runs, 1);
        assert!((t.mean - 2.0).abs() < 1e-12);
    }
}
