//! Continuous-wavelet-transform peak detection.
//!
//! A from-scratch implementation of the algorithm behind
//! `scipy.signal.find_peaks_cwt` [Du, Kibbe & Lin 2006], which the paper
//! uses to locate the peaks of the loop-latency distribution (§3.4):
//!
//! 1. convolve the signal with Ricker ("Mexican hat") wavelets over a range
//!    of widths,
//! 2. find relative maxima at each width,
//! 3. link maxima across adjacent widths into *ridge lines*,
//! 4. keep ridges that are long enough and whose signal-to-noise ratio at
//!    the smallest width clears a threshold.

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index into the input signal.
    pub index: usize,
    /// Signal-to-noise ratio of the supporting ridge line.
    pub snr: f64,
    /// Length of the supporting ridge line (in widths).
    pub ridge_len: usize,
}

/// The Ricker (Mexican-hat) wavelet with width parameter `a`, sampled at
/// `points` points centred on zero.
pub fn ricker(points: usize, a: f64) -> Vec<f64> {
    let norm = 2.0 / ((3.0 * a).sqrt() * std::f64::consts::PI.powf(0.25));
    let half = (points as f64 - 1.0) / 2.0;
    (0..points)
        .map(|i| {
            let t = i as f64 - half;
            let x = t / a;
            norm * (1.0 - x * x) * (-x * x / 2.0).exp()
        })
        .collect()
}

/// "Same"-mode convolution of `signal` with `kernel`, with *reflected*
/// boundaries. Reflection keeps the zero-mean property of the wavelet at
/// the edges, so a flat signal transforms to (near) zero everywhere and
/// genuine peaks at the histogram's first bins remain detectable.
fn convolve_same(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = signal.len() as isize;
    let k = kernel.len();
    let mut out = vec![0.0; signal.len()];
    let half = (k / 2) as isize;
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &kv) in kernel.iter().enumerate() {
            let mut idx = i as isize + j as isize - half;
            // Reflect (repeatedly, in case the kernel is wider than the
            // signal).
            loop {
                if idx < 0 {
                    idx = -idx - 1;
                } else if idx >= n {
                    idx = 2 * n - 1 - idx;
                } else {
                    break;
                }
            }
            acc += signal[idx as usize] * kv;
        }
        *o = acc;
    }
    out
}

/// Indices of relative maxima of `row`, requiring the point to be ≥ its
/// neighbours within `order` on both sides and strictly positive.
fn relative_maxima(row: &[f64], order: usize) -> Vec<usize> {
    let n = row.len();
    let mut out = Vec::new();
    'outer: for i in 0..n {
        if row[i] <= 0.0 {
            continue;
        }
        let lo = i.saturating_sub(order);
        let hi = (i + order).min(n - 1);
        for j in lo..=hi {
            if j != i && row[j] > row[i] {
                continue 'outer;
            }
        }
        // Break flat-top ties towards the leftmost point.
        if i > lo && row[i - 1] == row[i] {
            continue;
        }
        out.push(i);
    }
    out
}

#[derive(Debug)]
struct Ridge {
    /// `(width_index, signal_index)` points, from the largest width down.
    points: Vec<(usize, usize)>,
    gap: usize,
}

/// Finds peaks in `signal` using wavelet widths `widths` (ascending).
///
/// `min_snr` is the minimum (exclusive) signal-to-noise ratio;
/// noise is estimated as the 95th percentile of |CWT| at the smallest
/// width over a window around the ridge.
pub fn find_peaks_cwt(signal: &[f64], widths: &[usize], min_snr: f64) -> Vec<Peak> {
    if signal.is_empty() || widths.is_empty() {
        return Vec::new();
    }
    let n = signal.len();

    // CWT matrix: one row per width, ascending.
    let rows: Vec<Vec<f64>> = widths
        .iter()
        .map(|&w| {
            let kernel_len = (10 * w).min(n.max(8));
            convolve_same(signal, &ricker(kernel_len.max(3), w as f64))
        })
        .collect();

    // Ridge lines: start from maxima of the largest width, connect down.
    let max_gap = 2usize;
    let mut ridges: Vec<Ridge> = Vec::new();
    for wi in (0..widths.len()).rev() {
        let order = widths[wi].max(1);
        let maxima = relative_maxima(&rows[wi], order);
        let max_dist = (widths[wi] / 4).max(2);
        let mut used = vec![false; maxima.len()];
        for ridge in ridges.iter_mut() {
            if ridge.gap > max_gap {
                continue;
            }
            let last = ridge.points.last().expect("ridge is non-empty").1;
            // Nearest unused maximum within max_dist.
            let mut best: Option<(usize, usize)> = None;
            for (mi, &m) in maxima.iter().enumerate() {
                if used[mi] {
                    continue;
                }
                let d = m.abs_diff(last);
                if d <= max_dist && best.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best = Some((d, mi));
                }
            }
            match best {
                Some((_, mi)) => {
                    used[mi] = true;
                    ridge.points.push((wi, maxima[mi]));
                    ridge.gap = 0;
                }
                None => ridge.gap += 1,
            }
        }
        for (mi, &m) in maxima.iter().enumerate() {
            if !used[mi] {
                ridges.push(Ridge {
                    points: vec![(wi, m)],
                    gap: 0,
                });
            }
        }
    }

    // Noise floor: 95th percentile of |CWT| at the smallest width.
    let mut abs0: Vec<f64> = rows[0].iter().map(|v| v.abs()).collect();
    abs0.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let noise_global = abs0[((abs0.len() - 1) as f64 * 0.5) as usize].max(1e-12);

    let min_len = (widths.len() / 4).max(2);
    let mut peaks: Vec<Peak> = Vec::new();
    for r in &ridges {
        if r.points.len() < min_len {
            continue;
        }
        // Position: the ridge's point at the smallest width it reaches.
        let &(wi_min, pos) = r
            .points
            .iter()
            .min_by_key(|(wi, _)| *wi)
            .expect("non-empty");
        let strength = rows[wi_min][pos].max(rows[0][pos.min(n - 1)]);
        let signal_max = signal.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        if strength < 1e-6 * signal_max.max(1e-300) {
            continue; // Numerical residue, not a real response.
        }
        let snr = strength / noise_global;
        // Strict: a response indistinguishable from the noise floor (snr
        // exactly 1, e.g. any constant signal) is not a peak.
        if snr > min_snr {
            peaks.push(Peak {
                index: pos,
                snr,
                ridge_len: r.points.len(),
            });
        }
    }

    // De-duplicate nearby peaks (keep the strongest) and sort by index.
    peaks.sort_by(|a, b| b.snr.partial_cmp(&a.snr).expect("finite"));
    let min_sep = widths[0].max(2);
    let mut kept: Vec<Peak> = Vec::new();
    for p in peaks {
        if kept.iter().all(|q| q.index.abs_diff(p.index) > min_sep) {
            kept.push(p);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_bump(signal: &mut [f64], center: f64, sigma: f64, amp: f64) {
        for (i, v) in signal.iter_mut().enumerate() {
            let x = (i as f64 - center) / sigma;
            *v += amp * (-x * x / 2.0).exp();
        }
    }

    #[test]
    fn ricker_shape() {
        let w = ricker(101, 10.0);
        // Maximum at the centre, negative side lobes.
        let center = 50;
        assert!(w[center] > 0.0);
        assert!(w.iter().all(|&v| v <= w[center]));
        assert!(w[center + 15] < 0.0);
        // Near-zero mean (admissibility).
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 1e-3, "{mean}");
    }

    #[test]
    fn finds_two_well_separated_peaks() {
        let mut s = vec![0.0; 300];
        gaussian_bump(&mut s, 80.0, 6.0, 10.0);
        gaussian_bump(&mut s, 220.0, 8.0, 6.0);
        let widths: Vec<usize> = (1..=12).collect();
        let peaks = find_peaks_cwt(&s, &widths, 1.0);
        assert_eq!(peaks.len(), 2, "{peaks:?}");
        assert!(peaks[0].index.abs_diff(80) <= 4, "{peaks:?}");
        assert!(peaks[1].index.abs_diff(220) <= 4, "{peaks:?}");
    }

    #[test]
    fn finds_four_paper_like_peaks() {
        // Fig. 4's structure: peaks at ~80, 230, 400, 650 (scaled to bins).
        let mut s = vec![0.0; 700];
        gaussian_bump(&mut s, 80.0, 8.0, 20.0);
        gaussian_bump(&mut s, 230.0, 10.0, 9.0);
        gaussian_bump(&mut s, 400.0, 12.0, 6.0);
        gaussian_bump(&mut s, 650.0, 12.0, 4.0);
        let widths: Vec<usize> = (1..=16).collect();
        let peaks = find_peaks_cwt(&s, &widths, 1.0);
        assert_eq!(peaks.len(), 4, "{peaks:?}");
        let expect = [80usize, 230, 400, 650];
        for (p, e) in peaks.iter().zip(expect) {
            assert!(p.index.abs_diff(e) <= 6, "{peaks:?}");
        }
    }

    #[test]
    fn flat_signal_has_no_peaks() {
        let s = vec![1.0; 200];
        let widths: Vec<usize> = (1..=10).collect();
        let peaks = find_peaks_cwt(&s, &widths, 1.0);
        assert!(peaks.is_empty(), "{peaks:?}");
    }

    #[test]
    fn noise_yields_no_high_confidence_peaks() {
        // Deterministic hash-based noise (splitmix64 avalanche).
        let s: Vec<f64> = (0..200u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z ^ (z >> 31)) % 1000) as f64 / 10_000.0
            })
            .collect();
        let widths: Vec<usize> = (1..=10).collect();
        // A genuine peak in this codebase's distributions clears SNR 10+
        // easily; noise must not.
        let peaks = find_peaks_cwt(&s, &widths, 12.0);
        assert!(peaks.len() <= 1, "{peaks:?}");
    }

    #[test]
    fn empty_inputs() {
        assert!(find_peaks_cwt(&[], &[1, 2], 1.0).is_empty());
        assert!(find_peaks_cwt(&[1.0, 2.0], &[], 1.0).is_empty());
    }

    #[test]
    fn single_sharp_peak() {
        let mut s = vec![0.0; 100];
        gaussian_bump(&mut s, 50.0, 3.0, 5.0);
        let widths: Vec<usize> = (1..=8).collect();
        let peaks = find_peaks_cwt(&s, &widths, 1.0);
        assert_eq!(peaks.len(), 1, "{peaks:?}");
        assert!(peaks[0].index.abs_diff(50) <= 3);
    }
}
