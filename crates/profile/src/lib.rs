//! Profile analysis: from raw LBR/PEBS samples to prefetch hints.
//!
//! This crate implements §3.1–§3.4 of the paper:
//!
//! 1. [`delinquent`] — aggregate PEBS samples into a ranked list of
//!    *delinquent load PCs*;
//! 2. [`lbr_analysis`] — match delinquent loads to their basic blocks
//!    inside LBR samples, measure per-iteration loop latencies from branch
//!    cycle deltas, and measure inner-loop trip counts from runs of
//!    back-edge entries (Fig. 3);
//! 3. [`histogram`] + [`cwt`] — build the loop-latency distribution and
//!    locate its peaks with a continuous-wavelet-transform peak finder
//!    (the `scipy.signal.find_peaks_cwt` equivalent named in §3.4);
//! 4. [`model`] — apply Eq. 1 (`IC_latency × distance = MC_latency`) and
//!    Eq. 2 (`trip_count < k × distance` ⇒ outer-loop site) to produce a
//!    [`model::LoadHint`] per delinquent load.

pub mod cwt;
pub mod delinquent;
pub mod hintfile;
pub mod histogram;
pub mod lbr_analysis;
pub mod model;
pub mod sketch;

pub use cwt::{find_peaks_cwt, Peak};
pub use delinquent::{rank_delinquent_loads, DelinquentLoad};
pub use hintfile::{parse as parse_hints, serialize_hints, HintRecord};
pub use histogram::Histogram;
pub use lbr_analysis::{iteration_latencies, trip_counts, trip_counts_between, TripCountStats};
pub use model::{
    analyze, analyze_traced, eq1_distance, eq2_site, latency_distribution, latency_peaks,
    AnalysisConfig, AnalysisResult, LoadHint, PeakSummary, SiteDecision, SiteNote,
};
pub use sketch::LatencySketch;
