//! The APT-GET analytical model: Eq. 1 (prefetch distance) and Eq. 2
//! (injection site), applied per delinquent load.

use apt_cpu::ProfileData;
use apt_lir::pcmap::Location;
use apt_lir::{AddressMap, BlockId, FuncId, InstId, Module, Pc};
use apt_passes::loops::analyze_loops;
use apt_passes::{InjectionSpec, Site};
use apt_trace::SpanRecorder;

use crate::cwt::find_peaks_cwt;
use crate::delinquent::{rank_delinquent_loads, DelinquentLoad};
use crate::histogram::Histogram;
use crate::lbr_analysis::{
    iteration_latencies, iteration_latencies_bounded, trip_counts_between, TripCountStats,
};

/// Tunables of the analysis.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Minimum share of LLC-miss samples for a PC to count as delinquent.
    pub min_share: f64,
    /// Maximum number of delinquent loads to optimise.
    pub max_loads: usize,
    /// Eq. 2's coverage constant `k` (5 ⇒ 80 % coverage, §3.3).
    pub k: f64,
    /// Upper clamp on computed prefetch distances.
    pub max_distance: u64,
    /// Upper clamp on the outer-site inner-iteration sweep.
    pub max_fanout: u64,
    /// The machine's DRAM latency (known deployment spec) — used only as a
    /// fallback when the latency distribution shows a single peak, i.e.
    /// when the loop misses on (almost) every iteration.
    pub dram_latency_hint: u64,
    /// Histogram bins for the latency distribution.
    pub hist_bins: usize,
    /// Binomial smoothing passes before peak detection.
    pub smoothing: usize,
    /// Minimum CWT signal-to-noise ratio for a peak.
    pub min_snr: f64,
    /// Minimum latency observations before trusting the distribution;
    /// below this the paper's §3.6 fallback (distance 1) applies.
    pub min_observations: usize,
    /// PEBS sampling period used during profiling (to re-scale sample
    /// counts into miss counts).
    pub pebs_period: u64,
    /// Minimum estimated LLC misses per kilo-instruction a load must
    /// contribute before it is worth prefetching; below this, injection
    /// costs more than it saves (the paper's CG case).
    pub min_load_mpki: f64,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            min_share: 0.02,
            max_loads: 10,
            k: 5.0,
            max_distance: 1024,
            max_fanout: 8,
            dram_latency_hint: 120,
            hist_bins: 96,
            smoothing: 2,
            min_snr: 1.2,
            min_observations: 16,
            pebs_period: 64,
            min_load_mpki: 1.0,
        }
    }
}

/// A peak of the loop-latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSummary {
    /// Latency (cycles) at the peak.
    pub latency: u64,
    /// Fraction of the distribution's mass attributed to this peak.
    pub mass: f64,
}

/// The per-load optimisation decision.
#[derive(Debug, Clone)]
pub struct LoadHint {
    pub pc: Pc,
    pub func: FuncId,
    pub load: (BlockId, InstId),
    /// Chosen prefetch distance (iterations of the site loop).
    pub distance: u64,
    pub site: Site,
    /// Inner iterations prefetched per outer iteration (outer site only).
    pub fanout: u64,
    /// Estimated instruction-component latency (Eq. 1's `IC_latency`).
    pub ic_latency: f64,
    /// Estimated memory-component latency to hide (`MC_latency`).
    pub mc_latency: f64,
    /// Measured mean inner-loop trip count, when reliable.
    pub trip_count: Option<f64>,
    /// The inner-site distance (Eq. 1 on the inner loop); for outer-site
    /// hints this is carried as the structural fallback.
    pub inner_distance: Option<u64>,
    /// Detected latency peaks, ascending.
    pub peaks: Vec<PeakSummary>,
    /// Share of LLC-miss samples this load accounts for.
    pub share: f64,
}

impl LoadHint {
    /// Converts the hint into an injection request.
    pub fn to_spec(&self) -> InjectionSpec {
        InjectionSpec {
            func: self.func,
            load: self.load,
            distance: self.distance,
            site: self.site,
            fanout: self.fanout,
            fallback_inner_distance: self.inner_distance,
        }
    }
}

/// The full analysis outcome.
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    pub hints: Vec<LoadHint>,
    pub delinquent: Vec<DelinquentLoad>,
    /// Human-readable decisions and fallbacks, for experiment logs.
    pub notes: Vec<String>,
}

impl AnalysisResult {
    /// All hints as injection specs.
    pub fn specs(&self) -> Vec<InjectionSpec> {
        self.hints.iter().map(LoadHint::to_spec).collect()
    }
}

/// Latency distribution + peaks for one loop branch — the data behind
/// Fig. 4. Exposed for the figure-reproduction benches.
pub fn latency_distribution(
    profile: &ProfileData,
    branch_pc: Pc,
    cfg: &AnalysisConfig,
) -> Option<(Histogram, Vec<PeakSummary>)> {
    let lats = iteration_latencies(&profile.lbr_samples, branch_pc);
    if lats.len() < cfg.min_observations {
        return None;
    }
    let hist = Histogram::build(&lats, cfg.hist_bins, 0.995)?.smoothed(cfg.smoothing);
    let peaks = detect_peaks(&hist, cfg);
    Some((hist, peaks))
}

/// CWT peak detection over a latency histogram, with per-peak mass
/// attribution — the §3.2 step between the raw distribution and Eq. 1.
/// Public for the figure benches and the recovery property tests.
pub fn latency_peaks(hist: &Histogram, cfg: &AnalysisConfig) -> Vec<PeakSummary> {
    detect_peaks(hist, cfg)
}

fn detect_peaks(hist: &Histogram, cfg: &AnalysisConfig) -> Vec<PeakSummary> {
    let max_width = (hist.counts.len() / 8).clamp(2, 24);
    let widths: Vec<usize> = (1..=max_width).collect();
    let raw = find_peaks_cwt(&hist.counts, &widths, cfg.min_snr);
    if raw.is_empty() {
        return Vec::new();
    }
    // Mass: split bins at midpoints between adjacent peaks.
    let total = hist.total().max(1e-12);
    let idxs: Vec<usize> = raw.iter().map(|p| p.index).collect();
    let mut out = Vec::with_capacity(idxs.len());
    for (i, &pi) in idxs.iter().enumerate() {
        let lo = if i == 0 { 0 } else { (idxs[i - 1] + pi) / 2 };
        let hi = if i + 1 == idxs.len() {
            hist.counts.len()
        } else {
            (pi + idxs[i + 1]).div_ceil(2)
        };
        let mass: f64 = hist.counts[lo..hi].iter().sum::<f64>() / total;
        out.push(PeakSummary {
            latency: hist.bin_center(pi),
            mass,
        });
    }
    out
}

/// Eq. 1, exposed for property testing: derive `(IC_latency, MC_latency,
/// distance)` from the detected latency peaks. The distance is
/// `round(MC / IC)` clamped to `[1, cfg.max_distance]`, with the single-
/// and zero-peak fallbacks of §3.2/§3.6.
pub fn eq1_distance(peaks: &[PeakSummary], cfg: &AnalysisConfig) -> (f64, f64, u64) {
    derive_distance(peaks, cfg)
}

/// Eq. 1: derive `(IC, MC, distance)` from the latency peaks.
fn derive_distance(peaks: &[PeakSummary], cfg: &AnalysisConfig) -> (f64, f64, u64) {
    let (ic, mc) = match peaks {
        [] => (1.0, 0.0),
        [only] => {
            // Single peak: the load misses on (almost) every iteration, so
            // the hit-latency peak is missing. Reconstruct IC from the
            // machine's known DRAM latency (§3.2's "predict the latency in
            // the case that the load is served from L1/L2").
            let p = only.latency as f64;
            let dram = cfg.dram_latency_hint as f64;
            let ic = if p > dram + 1.0 {
                p - dram
            } else {
                (p / 4.0).max(1.0)
            };
            (ic, p - ic)
        }
        [first, rest @ ..] => {
            // IC is the all-hits peak; MC must cover the *slowest* level
            // the load is regularly served from — prefetching at an
            // averaged distance would leave every DRAM-served instance
            // partially exposed. Peaks with negligible mass (< 5 %) are
            // ignored as measurement artefacts.
            let ic = first.latency as f64;
            let significant = rest.iter().filter(|p| p.mass >= 0.05);
            let far = significant
                .map(|p| p.latency as f64 - ic)
                .fold(0.0f64, f64::max);
            let mc = if far > 0.0 {
                far
            } else {
                // No significant miss peak: fall back to the mass-weighted
                // mean over whatever is there.
                let wsum: f64 = rest.iter().map(|p| p.mass).sum();
                if wsum > 0.0 {
                    rest.iter()
                        .map(|p| p.mass * (p.latency as f64 - ic))
                        .sum::<f64>()
                        / wsum
                } else {
                    0.0
                }
            };
            (ic, mc)
        }
    };
    let distance = if mc <= 0.0 || ic <= 0.0 {
        1
    } else {
        ((mc / ic).round() as u64).clamp(1, cfg.max_distance)
    };
    (ic, mc, distance)
}

/// A structured §3.6 fallback reason attached to a [`SiteDecision`];
/// callers format it with the load's PC for human-readable notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteNote {
    /// The inner loop saturates the LBR: its trip count is unmeasurably
    /// large, so the inner site stays and no trip count is reported.
    SaturatedInner,
    /// The outer loop's latency distribution had too few observations;
    /// the inner distance was scaled by the trip count instead.
    OuterUnmeasuredScaled {
        /// The scaled distance chosen.
        distance: u64,
    },
}

/// The outcome of Eq. 2 for a load inside a nested loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteDecision {
    /// Chosen injection site.
    pub site: Site,
    /// Inner iterations prefetched per outer iteration (outer site only).
    pub fanout: u64,
    /// Measured trip count, when reliable.
    pub trip_count: Option<f64>,
    /// Prefetch distance in iterations of the chosen site's loop.
    pub distance: u64,
    /// Structural-fallback inner distance (capped by short trip counts).
    pub inner_fallback: u64,
    /// Fallback reason, if any.
    pub note: Option<SiteNote>,
}

/// Eq. 2 (§3.3): decide the injection site for a load in a nested loop
/// from its inner-loop trip-count statistics.
///
/// `inner_distance` is the Eq. 1 distance on the inner loop;
/// `outer_hist` lazily supplies the *outer* loop's latency histogram
/// (unsmoothed), or `None` when it is unmeasured (too few observations) —
/// the distance is then scaled by the trip count instead of re-derived.
///
/// Pure: both the sample-driven path ([`analyze`]) and the profile-
/// database path (`apt-ingest`'s aggregate analysis) call this, so the
/// two pipelines cannot drift apart on the site decision.
pub fn eq2_site(
    trips: &TripCountStats,
    inner_distance: u64,
    cfg: &AnalysisConfig,
    outer_hist: impl FnOnce() -> Option<Histogram>,
) -> SiteDecision {
    let mut dec = SiteDecision {
        site: Site::Inner,
        fanout: 1,
        trip_count: None,
        distance: inner_distance,
        inner_fallback: inner_distance,
        note: None,
    };
    let long_tail = trips.saturated_runs * 8 >= trips.runs.max(1);
    if long_tail {
        // §3.6: LBR snapshots land wholly inside the inner loop — its
        // trip count is large (at least for the iterations where the
        // misses happen), so inner-loop prefetching is the right site
        // and the outer latency is unmeasurable.
        dec.note = Some(SiteNote::SaturatedInner);
    } else if trips.reliable() {
        dec.trip_count = Some(trips.weighted_mean);
        // If outer injection turns out to be structurally impossible,
        // fall back to the inner site with the distance capped by the
        // short trip count (a longer distance would only emit clamped,
        // useless prefetches).
        let cap = ((trips.weighted_mean / 2.0).floor() as u64).max(1);
        dec.inner_fallback = inner_distance.min(cap);
        if trips.weighted_mean < cfg.k * inner_distance as f64 {
            // Inner-loop prefetching cannot reach the coverage target:
            // move to the outer loop.
            dec.site = Site::Outer;
            dec.fanout = (trips.weighted_mean.round() as u64).clamp(1, cfg.max_fanout);
            // Recompute the distance against the *outer* loop's latency
            // distribution (§3.3).
            if let Some(h) = outer_hist() {
                let ps = detect_peaks(&h.smoothed(cfg.smoothing), cfg);
                let (_, _, od) = derive_distance(&ps, cfg);
                dec.distance = od;
            } else {
                // Scale the inner distance by the trip count.
                dec.distance = ((inner_distance as f64 / trips.weighted_mean).ceil() as u64)
                    .clamp(1, cfg.max_distance);
                dec.note = Some(SiteNote::OuterUnmeasuredScaled {
                    distance: dec.distance,
                });
            }
        }
    }
    dec
}

/// Runs the full §3.4 pipeline: PEBS → delinquent loads → LBR latency
/// distributions → peaks → Eq. 1 distance → Eq. 2 site → hints.
pub fn analyze(
    module: &Module,
    map: &AddressMap,
    profile: &ProfileData,
    profile_stats: &apt_cpu::PerfStats,
    cfg: &AnalysisConfig,
) -> AnalysisResult {
    // Span recording is cheap relative to the analysis itself (CWT over
    // histograms), so the untraced entry point just discards the spans.
    let mut spans = SpanRecorder::new();
    analyze_traced(module, map, profile, profile_stats, cfg, &mut spans)
}

/// [`analyze`], additionally emitting one span per phase and per analyzed
/// load into `spans` (the data behind `--explain` / `--trace-out`).
pub fn analyze_traced(
    module: &Module,
    map: &AddressMap,
    profile: &ProfileData,
    profile_stats: &apt_cpu::PerfStats,
    cfg: &AnalysisConfig,
    spans: &mut SpanRecorder,
) -> AnalysisResult {
    let rank = spans.begin("delinquency-ranking");
    let mut result = AnalysisResult {
        delinquent: rank_delinquent_loads(&profile.pebs, cfg.min_share, cfg.max_loads),
        ..Default::default()
    };
    spans.note(&rank, "pebs_records", profile.pebs.len());
    spans.note(&rank, "candidates", result.delinquent.len());
    for d in &result.delinquent {
        spans.note(
            &rank,
            &format!("share[{}]", d.pc),
            format!("{:.1}%", d.share * 100.0),
        );
    }
    spans.end(rank);

    for d in result.delinquent.clone() {
        let load_span = spans.begin(&format!("load {}", d.pc));
        // Gate on absolute miss volume: a load must miss often enough per
        // instruction for prefetching to pay for its slice (the CG case).
        let est_mpki = d.samples as f64 * cfg.pebs_period.max(1) as f64 * 1000.0
            / profile_stats.instructions.max(1) as f64;
        if est_mpki < cfg.min_load_mpki {
            result.notes.push(format!(
                "pc {}: ~{est_mpki:.2} MPKI below threshold; not worth prefetching",
                d.pc
            ));
            spans.note(
                &load_span,
                "skipped",
                format!("{est_mpki:.2} MPKI below threshold"),
            );
            spans.end(load_span);
            continue;
        }
        let Some(Location::Inst(iref)) = map.resolve(d.pc) else {
            result
                .notes
                .push(format!("pc {} does not resolve to an instruction", d.pc));
            spans.note(
                &load_span,
                "skipped",
                "pc does not resolve to an instruction",
            );
            spans.end(load_span);
            continue;
        };
        let func = module.function(iref.func);
        let forest = analyze_loops(func);
        let Some(inner_idx) = forest.innermost_of(iref.block) else {
            result
                .notes
                .push(format!("load at {} is not inside a loop", d.pc));
            spans.note(&load_span, "skipped", "not inside a loop");
            spans.end(load_span);
            continue;
        };

        // Latency distribution of the loop containing the load, measured
        // at its back-edge branch (retired once per continuing iteration;
        // for the common single-block rotated loop this *is* the BBL
        // containing the load, as in §3.2).
        let inner_latch = forest.loops[inner_idx].latches[0];
        let bbl_branch = map.term_pc(iref.func, inner_latch);
        // Deltas across the enclosing loop's back edge are not iteration
        // latencies; reset at that boundary.
        let boundary = forest.parent_of(inner_idx).map(|o| {
            let outer_latch = forest.loops[o].latches[0];
            map.term_pc(iref.func, outer_latch)
        });
        let lbr = spans.begin("lbr-matching");
        let lats = iteration_latencies_bounded(&profile.lbr_samples, bbl_branch, boundary);
        spans.note(&lbr, "loop_branch", bbl_branch);
        spans.note(&lbr, "observations", lats.len());
        spans.end(lbr);

        let (ic, mc, mut distance, peaks);
        if lats.len() < cfg.min_observations {
            // §3.6 fallback: not enough LBR evidence — distance 1.
            ic = 0.0;
            mc = 0.0;
            distance = 1;
            peaks = Vec::new();
            result.notes.push(format!(
                "pc {}: only {} latency observations; defaulting to distance 1",
                d.pc,
                lats.len()
            ));
            spans.note(
                &load_span,
                "fallback",
                format!("only {} latency observations; distance 1", lats.len()),
            );
        } else {
            let cwt = spans.begin("cwt-peaks");
            let hist = Histogram::build(&lats, cfg.hist_bins, 0.995)
                .expect("non-empty latencies")
                .smoothed(cfg.smoothing);
            let ps = detect_peaks(&hist, cfg);
            spans.note(&cwt, "histogram", format!("\n{}", hist.ascii(48)));
            for (i, p) in ps.iter().enumerate() {
                spans.note(
                    &cwt,
                    &format!("peak{i}"),
                    format!("{} cycles ({:.0}% mass)", p.latency, p.mass * 100.0),
                );
            }
            spans.end(cwt);
            let eq1 = spans.begin("eq1-distance");
            let (i, m, dist) = derive_distance(&ps, cfg);
            ic = i;
            mc = m;
            distance = dist;
            peaks = ps;
            spans.note(&eq1, "ic_latency", format!("{ic:.1}"));
            spans.note(&eq1, "mc_latency", format!("{mc:.1}"));
            spans.note(&eq1, "distance", distance);
            spans.end(eq1);
        }

        // Eq. 2: choose the injection site.
        let eq2 = spans.begin("eq2-site");
        let mut site = Site::Inner;
        let mut fanout = 1u64;
        let mut trip_count = None;
        let inner_distance = distance;
        let mut inner_fallback = inner_distance;
        if let Some(outer_idx) = forest.parent_of(inner_idx) {
            let outer_latch = forest.loops[outer_idx].latches[0];
            let outer_branch_pc = map.term_pc(iref.func, outer_latch);
            let trips = trip_counts_between(&profile.lbr_samples, bbl_branch, outer_branch_pc);
            let dec = eq2_site(&trips, inner_distance, cfg, || {
                let outer_lats = iteration_latencies(&profile.lbr_samples, outer_branch_pc);
                if outer_lats.len() >= cfg.min_observations {
                    Histogram::build(&outer_lats, cfg.hist_bins, 0.995)
                } else {
                    None
                }
            });
            site = dec.site;
            fanout = dec.fanout;
            trip_count = dec.trip_count;
            distance = dec.distance;
            inner_fallback = dec.inner_fallback;
            match dec.note {
                Some(SiteNote::SaturatedInner) => result.notes.push(format!(
                    "pc {}: inner loop saturates the LBR; staying inner",
                    d.pc
                )),
                Some(SiteNote::OuterUnmeasuredScaled { distance }) => result.notes.push(format!(
                    "pc {}: outer latency unmeasured; scaled distance to {}",
                    d.pc, distance
                )),
                None => {}
            }
        }

        spans.note(&eq2, "site", format!("{site:?}"));
        spans.note(&eq2, "fanout", fanout);
        if let Some(t) = trip_count {
            spans.note(&eq2, "trip_count", format!("{t:.1}"));
        }
        spans.end(eq2);

        spans.note(&load_span, "distance", distance);
        spans.note(&load_span, "site", format!("{site:?}"));
        spans.end(load_span);

        result.hints.push(LoadHint {
            pc: d.pc,
            func: iref.func,
            load: (iref.block, iref.inst),
            distance,
            site,
            fanout,
            ic_latency: ic,
            mc_latency: mc,
            trip_count,
            inner_distance: Some(inner_fallback),
            peaks,
            share: d.share,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn distance_from_two_peaks() {
        // IC = 10, miss peak at 90 → MC = 80 → distance 8.
        let peaks = vec![
            PeakSummary {
                latency: 10,
                mass: 0.6,
            },
            PeakSummary {
                latency: 90,
                mass: 0.4,
            },
        ];
        let (ic, mc, d) = derive_distance(&peaks, &cfg());
        assert_eq!(ic, 10.0);
        assert_eq!(mc, 80.0);
        assert_eq!(d, 8);
    }

    #[test]
    fn distance_targets_the_slowest_significant_peak() {
        // Peaks at 10 (hits), 50 and 90: the prefetch must cover the
        // 90-cycle (DRAM) peak → MC = 80 → distance 8.
        let peaks = vec![
            PeakSummary {
                latency: 10,
                mass: 0.5,
            },
            PeakSummary {
                latency: 50,
                mass: 0.25,
            },
            PeakSummary {
                latency: 90,
                mass: 0.25,
            },
        ];
        let (_, mc, d) = derive_distance(&peaks, &cfg());
        assert_eq!(mc, 80.0);
        assert_eq!(d, 8);
    }

    #[test]
    fn negligible_far_peaks_are_ignored() {
        // A 0.1 %-mass artefact at 10 000 cycles must not explode the
        // distance; the 90-cycle peak governs.
        let peaks = vec![
            PeakSummary {
                latency: 10,
                mass: 0.6,
            },
            PeakSummary {
                latency: 90,
                mass: 0.399,
            },
            PeakSummary {
                latency: 10_000,
                mass: 0.001,
            },
        ];
        let (_, mc, d) = derive_distance(&peaks, &cfg());
        assert_eq!(mc, 80.0);
        assert_eq!(d, 8);
    }

    #[test]
    fn single_peak_uses_dram_hint() {
        // Every iteration misses: one peak at 150, DRAM hint 120 → IC 30,
        // distance round(120/30) = 4.
        let peaks = vec![PeakSummary {
            latency: 150,
            mass: 1.0,
        }];
        let (ic, mc, d) = derive_distance(&peaks, &cfg());
        assert_eq!(ic, 30.0);
        assert_eq!(mc, 120.0);
        assert_eq!(d, 4);
    }

    #[test]
    fn no_peaks_defaults_to_one() {
        let (_, _, d) = derive_distance(&[], &cfg());
        assert_eq!(d, 1);
    }

    #[test]
    fn distance_clamped_to_max() {
        let peaks = vec![
            PeakSummary {
                latency: 1,
                mass: 0.5,
            },
            PeakSummary {
                latency: 1_000_000,
                mass: 0.5,
            },
        ];
        let c = cfg();
        let (_, _, d) = derive_distance(&peaks, &c);
        assert_eq!(d, c.max_distance);
    }

    #[test]
    fn analyze_empty_profile_is_empty() {
        let m = Module::new("t");
        let map = m.assign_pcs();
        let stats = apt_cpu::PerfStats::default();
        let r = analyze(&m, &map, &ProfileData::default(), &stats, &cfg());
        assert!(r.hints.is_empty());
        assert!(r.delinquent.is_empty());
    }
}
