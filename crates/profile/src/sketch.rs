//! An exact, mergeable latency multiset — the cross-run aggregation
//! substrate behind the profile database.
//!
//! Production profiles arrive as many short runs (§3.6's AutoFDO
//! deployment model): each run contributes a modest number of
//! iteration-latency observations, and the database must combine them
//! into one high-confidence distribution. A binned histogram cannot do
//! that losslessly — two histograms built over different sample sets
//! generally disagree on bin geometry, so adding them is not associative
//! and does not equal building one histogram from the concatenated
//! samples. The sketch therefore stores the *exact multiset* of observed
//! latencies as sparse `(latency, count)` pairs:
//!
//! * **merge is count addition** — trivially associative, commutative and
//!   deterministic (`BTreeMap` keeps keys ordered);
//! * [`LatencySketch::to_histogram`] replays [`Histogram::build`]'s exact
//!   algorithm over the multiset, so a sketch merged from any sharding of
//!   the samples yields the *bit-identical* histogram the in-memory path
//!   builds from the concatenated samples (the shard property test);
//! * every count is a `u64`, so on-disk round-trips are exact.
//!
//! Iteration latencies are cycle counts with heavy repetition (a loop has
//! a few characteristic latencies), so the sparse representation is also
//! far smaller than the raw sample vector.

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// Exact multiset of `u64` latency observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySketch {
    counts: BTreeMap<u64, u64>,
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch::default()
    }

    /// Builds a sketch from raw observations.
    pub fn from_values(values: &[u64]) -> LatencySketch {
        let mut s = LatencySketch::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(value).or_insert(0) += n;
        }
    }

    /// Total number of observations (with multiplicity).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// True if no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of distinct latency values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The smallest observed latency.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// The largest observed latency.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Sparse `(latency, count)` pairs in ascending latency order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another sketch into this one (sample-count-weighted
    /// addition). Associative and commutative: any merge tree over the
    /// same shards yields the same sketch.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (&v, &c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
    }

    /// The `k`-th smallest observation (0-based, with multiplicity) —
    /// the order statistic [`Histogram::build`] uses for tail clipping.
    fn kth(&self, k: u64) -> Option<u64> {
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen > k {
                return Some(v);
            }
        }
        None
    }

    /// The exact quantile-`q` observation (clamped to `[0, 1]`): the
    /// `⌊(n−1)·q⌋`-th order statistic of the multiset, matching the index
    /// convention [`Histogram::build`] uses for tail clipping. `q = 0` is
    /// the minimum, `q = 1` the maximum; an empty sketch yields `None`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.total();
        if n == 0 {
            return None;
        }
        let k = (((n - 1) as f64) * q.clamp(0.0, 1.0)) as u64;
        self.kth(k)
    }

    /// Builds the same histogram [`Histogram::build`] would build from
    /// the expanded multiset: identical `min`, `bin_width` and bin counts.
    /// Returns `None` exactly when `Histogram::build` would (no
    /// observations, or `target_bins == 0`).
    pub fn to_histogram(&self, target_bins: usize, clip_quantile: f64) -> Option<Histogram> {
        if self.is_empty() || target_bins == 0 {
            return None;
        }
        let n = self.total();
        let min = self.min().expect("non-empty");
        // Mirror Histogram::build: index the sorted multiset at the
        // clip quantile.
        let q_idx = (((n - 1) as f64) * clip_quantile.clamp(0.0, 1.0)) as u64;
        let max = self.kth(q_idx).expect("quantile within range").max(min + 1);
        let bin_width = ((max - min) / target_bins as u64).max(1);
        let nbins = ((max - min) / bin_width + 1) as usize;
        let mut counts = vec![0.0; nbins];
        for (&v, &c) in &self.counts {
            let b = (((v.saturating_sub(min)) / bin_width) as usize).min(nbins - 1);
            counts[b] += c as f64;
        }
        Some(Histogram {
            min,
            bin_width,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_hist_eq(a: &Histogram, b: &Histogram) {
        assert_eq!(a.min, b.min);
        assert_eq!(a.bin_width, b.bin_width);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn matches_histogram_build() {
        let values: Vec<u64> = (0..500).map(|i| (i * 37) % 211 + 10).collect();
        let sketch = LatencySketch::from_values(&values);
        for (bins, clip) in [(10, 1.0), (96, 0.995), (4, 0.5), (1, 1.0)] {
            let direct = Histogram::build(&values, bins, clip).unwrap();
            let via = sketch.to_histogram(bins, clip).unwrap();
            assert_hist_eq(&direct, &via);
        }
    }

    #[test]
    fn merge_is_count_addition() {
        let mut a = LatencySketch::from_values(&[5, 5, 9]);
        let b = LatencySketch::from_values(&[5, 12]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(
            a.entries().collect::<Vec<_>>(),
            vec![(5, 3), (9, 1), (12, 1)]
        );
    }

    #[test]
    fn merge_associativity_smoke() {
        let shards = [
            LatencySketch::from_values(&[1, 2, 3]),
            LatencySketch::from_values(&[3, 3, 100]),
            LatencySketch::from_values(&[7]),
        ];
        // ((a + b) + c) == (a + (b + c)).
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut bc = shards[1].clone();
        bc.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn empty_sketch_yields_no_histogram() {
        assert!(LatencySketch::new().to_histogram(10, 1.0).is_none());
        assert!(LatencySketch::from_values(&[1])
            .to_histogram(0, 1.0)
            .is_none());
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let s = LatencySketch::from_values(&[10, 10, 20, 30]);
        assert_eq!(s.quantile(0.0), s.min());
        assert_eq!(s.quantile(0.5), Some(10)); // k = ⌊3 · 0.5⌋ = 1.
        assert_eq!(s.quantile(1.0), s.max());
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(s.quantile(-1.0), Some(10));
        assert_eq!(s.quantile(42.0), Some(30));
        // Odd count: the median is the literal middle observation.
        let odd = LatencySketch::from_values(&[1, 2, 3, 4, 100]);
        assert_eq!(odd.quantile(0.5), Some(3));
    }

    #[test]
    fn quantile_of_empty_sketch_is_none() {
        assert_eq!(LatencySketch::new().quantile(0.5), None);
        assert_eq!(LatencySketch::new().quantile(0.0), None);
    }

    #[test]
    fn order_statistics() {
        let s = LatencySketch::from_values(&[10, 10, 20, 30]);
        assert_eq!(s.kth(0), Some(10));
        assert_eq!(s.kth(1), Some(10));
        assert_eq!(s.kth(2), Some(20));
        assert_eq!(s.kth(3), Some(30));
        assert_eq!(s.kth(4), None);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
        assert_eq!(s.distinct(), 3);
    }
}
