//! Latency histograms (the distribution plotted in Fig. 4).

/// A fixed-bin histogram over `u64` latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub min: u64,
    /// Width of each bin (≥ 1).
    pub bin_width: u64,
    /// Bin counts.
    pub counts: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram with roughly `target_bins` bins, clipping the
    /// upper tail at the `clip_quantile` quantile to keep outliers from
    /// flattening the interesting region.
    pub fn build(values: &[u64], target_bins: usize, clip_quantile: f64) -> Option<Histogram> {
        if values.is_empty() || target_bins == 0 {
            return None;
        }
        let mut sorted: Vec<u64> = values.to_vec();
        sorted.sort_unstable();
        let min = sorted[0];
        let q_idx = (((sorted.len() - 1) as f64) * clip_quantile.clamp(0.0, 1.0)) as usize;
        let max = sorted[q_idx].max(min + 1);
        let bin_width = ((max - min) / target_bins as u64).max(1);
        let nbins = ((max - min) / bin_width + 1) as usize;
        let mut counts = vec![0.0; nbins];
        for &v in &sorted {
            let b = (((v.saturating_sub(min)) / bin_width) as usize).min(nbins - 1);
            counts[b] += 1.0;
        }
        Some(Histogram {
            min,
            bin_width,
            counts,
        })
    }

    /// The latency at the centre of bin `i`, saturating at `u64::MAX` for
    /// degenerate geometries (extreme value ranges make
    /// `min + i × bin_width` overflow for the last catch-all bin).
    pub fn bin_center(&self, i: usize) -> u64 {
        self.min
            .saturating_add(self.bin_width.saturating_mul(i as u64))
            .saturating_add(self.bin_width / 2)
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The latency at quantile `q` (clamped to `[0, 1]`), resolved to a
    /// bin centre: the centre of the first non-empty bin whose cumulative
    /// mass reaches `q × total`. `q = 0` is the first non-empty bin,
    /// `q = 1` the last. Returns `None` when the histogram holds no mass.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total;
        let mut cum = 0.0;
        let mut last_nonempty = None;
        for (i, &c) in self.counts.iter().enumerate() {
            if c <= 0.0 {
                continue;
            }
            cum += c;
            last_nonempty = Some(i);
            if cum >= target {
                return Some(self.bin_center(i));
            }
        }
        // Floating-point shortfall (cum summed to slightly under total):
        // fall back to the last non-empty bin.
        last_nonempty.map(|i| self.bin_center(i))
    }

    /// Returns a copy smoothed with a 3-tap binomial kernel, applied
    /// `passes` times (stabilises the CWT on spiky integer data).
    pub fn smoothed(&self, passes: usize) -> Histogram {
        let mut cur = self.counts.clone();
        for _ in 0..passes {
            let mut next = vec![0.0; cur.len()];
            for i in 0..cur.len() {
                let l = if i > 0 { cur[i - 1] } else { cur[i] };
                let r = if i + 1 < cur.len() {
                    cur[i + 1]
                } else {
                    cur[i]
                };
                next[i] = 0.25 * l + 0.5 * cur[i] + 0.25 * r;
            }
            cur = next;
        }
        Histogram {
            min: self.min,
            bin_width: self.bin_width,
            counts: cur,
        }
    }

    /// Renders an ASCII sketch of the distribution (for experiment logs).
    pub fn ascii(&self, width: usize) -> String {
        let peak = self.counts.iter().cloned().fold(0.0f64, f64::max);
        if peak == 0.0 {
            return String::new();
        }
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = ((c / peak) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>8} | {}\n",
                self.bin_center(i),
                "#".repeat(bar)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_bins() {
        let values: Vec<u64> = (0..100).collect();
        let h = Histogram::build(&values, 10, 1.0).unwrap();
        assert_eq!(h.total(), 100.0);
        assert!(h.counts.len() >= 10);
        assert_eq!(h.min, 0);
    }

    #[test]
    fn clipping_limits_tail() {
        let mut values: Vec<u64> = vec![10; 99];
        values.push(1_000_000); // One outlier.
        let h = Histogram::build(&values, 20, 0.95).unwrap();
        // The range is dominated by the clipped quantile, not the outlier.
        assert!(h.bin_width < 1000, "bin width {}", h.bin_width);
        assert_eq!(h.total(), 100.0); // Outlier lands in the last bin.
    }

    #[test]
    fn empty_input_is_none() {
        assert!(Histogram::build(&[], 10, 1.0).is_none());
    }

    #[test]
    fn smoothing_preserves_mass() {
        let values: Vec<u64> = vec![5, 5, 5, 20, 20, 40];
        let h = Histogram::build(&values, 8, 1.0).unwrap();
        let s = h.smoothed(3);
        assert!((s.total() - h.total()).abs() < 1e-9);
    }

    #[test]
    fn bin_center_math() {
        let h = Histogram {
            min: 100,
            bin_width: 10,
            counts: vec![0.0; 5],
        };
        assert_eq!(h.bin_center(0), 105);
        assert_eq!(h.bin_center(3), 135);
    }

    #[test]
    fn ascii_renders() {
        let h = Histogram::build(&[1, 1, 1, 9], 4, 1.0).unwrap();
        let a = h.ascii(10);
        assert!(a.contains('#'));
    }

    #[test]
    fn zero_bins_is_none() {
        assert!(Histogram::build(&[1, 2, 3], 0, 1.0).is_none());
    }

    #[test]
    fn all_equal_values_collapse_to_one_bin() {
        // A constant distribution must not panic or lose mass: the range
        // degenerates to [v, v+1) and everything lands in bin 0.
        let h = Histogram::build(&[42; 100], 16, 1.0).unwrap();
        assert_eq!(h.min, 42);
        assert_eq!(h.bin_width, 1);
        assert_eq!(h.total(), 100.0);
        assert_eq!(h.counts[0], 100.0);
    }

    #[test]
    fn single_value_input() {
        let h = Histogram::build(&[7], 8, 0.995).unwrap();
        assert_eq!(h.total(), 1.0);
        assert_eq!(h.min, 7);
    }

    #[test]
    fn clip_quantile_zero_clips_to_the_minimum() {
        // clip 0.0 collapses the range to [min, min+1); everything above
        // min lands in the catch-all last bin, mass preserved.
        let values: Vec<u64> = (0..50).map(|i| i * 10).collect();
        let h = Histogram::build(&values, 10, 0.0).unwrap();
        assert_eq!(h.min, 0);
        assert_eq!(h.bin_width, 1);
        assert_eq!(h.total(), 50.0);
        assert_eq!(h.counts[0], 1.0); // Only the minimum itself.
        assert_eq!(*h.counts.last().unwrap(), 49.0);
    }

    #[test]
    fn clip_quantile_one_spans_the_full_range() {
        let values: Vec<u64> = vec![10, 20, 1000];
        let h = Histogram::build(&values, 10, 1.0).unwrap();
        assert_eq!(h.total(), 3.0);
        // The last value must land in a real (not clipped) bin.
        let last_bin = ((1000 - 10) / h.bin_width) as usize;
        assert_eq!(h.counts[last_bin.min(h.counts.len() - 1)], 1.0);
    }

    #[test]
    fn out_of_range_clip_quantile_is_clamped() {
        // Out-of-range quantiles behave like 0.0 / 1.0 instead of
        // indexing out of bounds.
        let values: Vec<u64> = (0..20).collect();
        let lo = Histogram::build(&values, 4, -3.0).unwrap();
        let hi = Histogram::build(&values, 4, 7.5).unwrap();
        assert_eq!(lo.total(), 20.0);
        assert_eq!(hi.total(), 20.0);
        assert_eq!(
            hi.bin_width,
            Histogram::build(&values, 4, 1.0).unwrap().bin_width
        );
    }

    #[test]
    fn quantile_endpoints_and_median() {
        // 100 values 0..100 in 10-ish bins: q=0 is the first bin's centre,
        // q=1 the last's, and the median lands in the middle bin.
        let values: Vec<u64> = (0..100).collect();
        let h = Histogram::build(&values, 10, 1.0).unwrap();
        assert_eq!(h.quantile(0.0), Some(h.bin_center(0)));
        assert_eq!(h.quantile(1.0), Some(h.bin_center(h.counts.len() - 1)));
        let median = h.quantile(0.5).unwrap();
        assert!((40..=60).contains(&median), "median bin centre {median}");
        // Out-of-range quantiles clamp to the endpoints.
        assert_eq!(h.quantile(-2.0), h.quantile(0.0));
        assert_eq!(h.quantile(9.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_skips_empty_bins() {
        let h = Histogram {
            min: 0,
            bin_width: 10,
            counts: vec![0.0, 3.0, 0.0, 1.0, 0.0],
        };
        assert_eq!(h.quantile(0.0), Some(h.bin_center(1)));
        assert_eq!(h.quantile(0.5), Some(h.bin_center(1)));
        assert_eq!(h.quantile(1.0), Some(h.bin_center(3)));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram {
            min: 0,
            bin_width: 1,
            counts: vec![0.0; 4],
        };
        assert_eq!(h.quantile(0.5), None);
        let no_bins = Histogram {
            min: 0,
            bin_width: 1,
            counts: Vec::new(),
        };
        assert_eq!(no_bins.quantile(0.0), None);
    }

    #[test]
    fn extreme_range_does_not_overflow_bin_center() {
        // u64::MAX-wide range: nbins ≈ target_bins+1 and the last bin's
        // centre saturates instead of overflowing.
        let h = Histogram::build(&[0, u64::MAX], 4, 1.0).unwrap();
        assert_eq!(h.total(), 2.0);
        let last = h.counts.len() - 1;
        assert!(h.bin_center(last) >= h.bin_center(last - 1));
    }
}
