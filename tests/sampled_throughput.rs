//! Throughput proof for SMARTS sampled simulation: the sampled
//! measurement runs must simulate at least 5× more cycles per host
//! second than the exact detailed runs on the full 13-workload campaign.
//!
//! The comparison deliberately uses the `measurement-run` spans, not the
//! whole-cell wall time: profiling runs are identical in both campaigns
//! (sampling never touches them — the profile feeds injection and must
//! stay exact), and the `--sampled-check` exact re-run is recorded under
//! its own `exact-check-run` span precisely so it cannot pollute this
//! measurement.
//!
//! Ignored by default (it runs the full registry twice, once fully
//! detailed); the CI sampled-campaign job runs it with `-- --ignored`.

use apt_bench::eval::{run_campaign, CampaignConfig, CampaignReport, SamplingSpec};
use apt_sample::SampleConfig;

/// Large enough that the default schedule (~5% detail) gets real
/// fast-forward stretches on every workload; small enough to keep the
/// exact reference campaign in CI budget.
const SCALE: f64 = 0.02;

fn campaign(sampling: Option<SamplingSpec>) -> CampaignReport {
    let cfg = CampaignConfig {
        cache: None,
        sampling,
        ..CampaignConfig::new(SCALE, 42, 4)
    };
    run_campaign(&cfg).expect("campaign runs")
}

/// Simulated cycles per host second across every measurement-run span.
fn measured_cycles_per_sec(r: &CampaignReport) -> f64 {
    let (mut cycles, mut wall_us) = (0u64, 0u64);
    for cell in &r.cells {
        for span in cell.spans.iter().filter(|s| s.name == "measurement-run") {
            cycles += span.sim_cycles;
            wall_us += span.wall_us;
        }
    }
    assert!(wall_us > 0, "measurement-run spans must record wall time");
    cycles as f64 / (wall_us as f64 / 1e6)
}

#[test]
#[ignore = "runs the full registry twice (once fully detailed); CI runs it with --ignored"]
fn sampled_measurement_is_at_least_5x_faster() {
    let exact = campaign(None);
    let sampled = campaign(Some(SamplingSpec {
        sample: SampleConfig::default(),
        check_exact: false,
    }));
    let exact_rate = measured_cycles_per_sec(&exact);
    let sampled_rate = measured_cycles_per_sec(&sampled);
    let uplift = sampled_rate / exact_rate;
    eprintln!(
        "measured throughput: exact {exact_rate:.0} cyc/s, \
         sampled {sampled_rate:.0} cyc/s, uplift {uplift:.1}x"
    );
    assert!(
        uplift >= 5.0,
        "sampled campaign must simulate >=5x faster: {exact_rate:.0} -> {sampled_rate:.0} \
         cyc/s is only {uplift:.1}x"
    );
}
