//! Differential testing: the reference LIR interpreter (`apt_lir::eval`)
//! versus the cycle-accurate machine (`apt_cpu::Machine`).
//!
//! The two implementations share nothing but the IR definition: the
//! interpreter executes architecturally (no pipeline, no memory
//! hierarchy, no prefetching), the machine models timing. For every
//! registry workload they must nevertheless agree on *architectural*
//! results — per-call return values and the final memory image — both on
//! the unmodified module and after APT-GET injects prefetches (which by
//! construction must not change program semantics). A divergence means
//! one of them mis-executes the IR; historically this class of bug hides
//! behind workloads whose checkers only inspect part of the output,
//! which is why the comparison also covers the full image digest.

use apt_cpu::{Machine, MemImage, SimConfig};
use apt_lir::eval::run_function;
use apt_lir::Module;
use apt_workloads::registry::all_workloads;
use aptget::{AptGet, PipelineConfig};

/// Far above any tiny-scale workload's instruction count, far below
/// anything that would make the suite slow on a hang.
const STEP_LIMIT: u64 = 200_000_000;

/// Tiny inputs: differential coverage scales with workload count, not
/// input size.
const SCALE: f64 = 0.004;
const SEED: u64 = 42;

/// Runs the call schedule through the interpreter.
fn interp_run(
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) -> (Vec<Option<u64>>, u64) {
    let mut mem = image.clone();
    let rets = calls
        .iter()
        .map(|(f, args)| {
            run_function(module, f, args, &mut mem, STEP_LIMIT)
                .unwrap_or_else(|e| panic!("interpreter failed on {f}: {e}"))
        })
        .collect();
    (rets, mem.digest())
}

/// Runs the call schedule through the cycle-accurate machine.
fn machine_run(
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) -> (Vec<Option<u64>>, u64) {
    let mut mach = Machine::new(module, SimConfig::default(), image.clone());
    let rets = calls
        .iter()
        .map(|(f, args)| {
            mach.call(f, args)
                .unwrap_or_else(|e| panic!("machine failed on {f}: {e}"))
        })
        .collect();
    (rets, mach.image.digest())
}

fn assert_agree(
    name: &str,
    variant: &str,
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) {
    let (i_rets, i_digest) = interp_run(module, image, calls);
    let (m_rets, m_digest) = machine_run(module, image, calls);
    assert_eq!(
        i_rets, m_rets,
        "{name} [{variant}]: return values diverge between interpreter and machine"
    );
    assert_eq!(
        i_digest, m_digest,
        "{name} [{variant}]: final memory images diverge between interpreter and machine"
    );
}

#[test]
fn interpreter_and_machine_agree_on_every_workload() {
    for spec in all_workloads() {
        let w = spec.build(SCALE, SEED);
        assert_agree(&w.name, "unoptimized", &w.module, &w.image, &w.calls);
    }
}

#[test]
fn interpreter_and_machine_agree_after_aptget_injection() {
    let cfg = PipelineConfig::default();
    for spec in all_workloads() {
        let w = spec.build(SCALE, SEED);
        let opt = AptGet::new(cfg)
            .optimize(&w.module, w.image.clone(), &w.calls)
            .unwrap_or_else(|e| panic!("{}: optimization failed: {e}", w.name));
        // The optimized module must also satisfy the workload's own
        // checker under pure architectural execution.
        let (rets, _) = interp_run(&opt.module, &w.image, &w.calls);
        let mut mem = w.image.clone();
        for (f, args) in &w.calls {
            run_function(&opt.module, f, args, &mut mem, STEP_LIMIT)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        (w.check)(&mem, &rets)
            .unwrap_or_else(|e| panic!("{}: interpreter result wrong: {e}", w.name));

        assert_agree(&w.name, "APT-GET", &opt.module, &w.image, &w.calls);
    }
}

#[test]
fn injection_preserves_interpreter_semantics() {
    // Prefetches are architectural no-ops: for each workload the
    // *interpreter* must produce identical results on the original and
    // the injected module (no machine involved at all).
    let cfg = PipelineConfig::default();
    for spec in all_workloads() {
        let w = spec.build(SCALE, SEED);
        let opt = AptGet::new(cfg)
            .optimize(&w.module, w.image.clone(), &w.calls)
            .unwrap_or_else(|e| panic!("{}: optimization failed: {e}", w.name));
        let (base_rets, base_digest) = interp_run(&w.module, &w.image, &w.calls);
        let (opt_rets, opt_digest) = interp_run(&opt.module, &w.image, &w.calls);
        assert_eq!(
            base_rets, opt_rets,
            "{}: injection changed return values",
            w.name
        );
        assert_eq!(
            base_digest, opt_digest,
            "{}: injection changed memory",
            w.name
        );
    }
}
