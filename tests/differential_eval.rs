//! Differential testing: the reference LIR interpreter (`apt_lir::eval`)
//! versus the cycle-accurate machine (`apt_cpu::Machine`).
//!
//! The two implementations share nothing but the IR definition: the
//! interpreter executes architecturally (no pipeline, no memory
//! hierarchy, no prefetching), the machine models timing. For every
//! registry workload they must nevertheless agree on *architectural*
//! results — per-call return values and the final memory image — both on
//! the unmodified module and after APT-GET injects prefetches (which by
//! construction must not change program semantics). A divergence means
//! one of them mis-executes the IR; historically this class of bug hides
//! behind workloads whose checkers only inspect part of the output,
//! which is why the comparison also covers the full image digest.
//!
//! The interpreter side deliberately runs *chunked*: the fueled
//! [`Interp`] pauses every few thousand instructions and is torn down and
//! rebuilt from its [`Checkpoint`] before continuing — the exact hand-off
//! the SMARTS sampled driver performs between fast-forward and detailed
//! simulation. Every workload runs at a small/large scale pair so the
//! checkpoints are exercised across `MemImage` growth (more pages, wider
//! index types in play, longer pause chains), and the chunked result is
//! additionally pinned to the one-shot `run_function` path.

use apt_cpu::{Machine, MemImage, SimConfig};
use apt_lir::eval::{run_function, DecodedModule, Interp, RunState};
use apt_lir::Module;
use apt_workloads::registry::all_workloads;
use aptget::{AptGet, PipelineConfig};

/// Far above any tiny-scale workload's instruction count, far below
/// anything that would make the suite slow on a hang.
const STEP_LIMIT: u64 = 200_000_000;

/// Small/large input pair: differential coverage scales with workload
/// count, and checkpoint coverage with image size. The large scale is 4×
/// the small one — enough to grow every workload's `MemImage` footprint
/// and multiply the pause chain, while keeping the suite fast.
const SCALES: [(f64, &str); 2] = [(0.004, "small"), (0.016, "large")];
const SEED: u64 = 42;

/// Fuel per chunk: forces many checkpoint/resume round-trips per call
/// without dominating runtime.
const CHUNK: u64 = 10_000;

/// Runs one call on the fueled interpreter, pausing every [`CHUNK`]
/// instructions and rebuilding the interpreter from its checkpoint at
/// every pause (both the `resume` and the `restore` paths must agree).
fn chunked_call(
    module: &Module,
    decoded: &DecodedModule,
    f: &str,
    args: &[u64],
    mem: &mut MemImage,
) -> Option<u64> {
    let (fid, _) = module
        .function_by_name(f)
        .unwrap_or_else(|| panic!("unknown function {f}"));
    let code = decoded.func(fid);
    let mut interp =
        Interp::new(code, args).unwrap_or_else(|e| panic!("interpreter failed on {f}: {e}"));
    loop {
        match interp
            .run(mem, CHUNK)
            .unwrap_or_else(|e| panic!("interpreter failed on {f}: {e}"))
        {
            RunState::Done(v) => return v,
            RunState::Paused => {
                assert!(interp.steps() < STEP_LIMIT, "{f}: runaway interpreter");
                let cp = interp.checkpoint();
                // Hand-off as the sampled driver does it: a fresh
                // interpreter resumed from raw state...
                let resumed = Interp::resume(code, cp.regs.clone(), cp.block, cp.steps);
                assert_eq!(resumed.checkpoint(), cp, "{f}: resume() drifts");
                // ...and the in-place restore path must land on the same
                // pause.
                interp.restore(&cp);
                assert_eq!(interp.checkpoint(), cp, "{f}: restore() drifts");
                interp = resumed;
            }
        }
    }
}

/// Runs the call schedule through the chunked interpreter and pins it to
/// the one-shot `run_function` reference.
fn interp_run(
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) -> (Vec<Option<u64>>, u64) {
    let decoded = DecodedModule::decode(module);
    let mut mem = image.clone();
    let rets: Vec<Option<u64>> = calls
        .iter()
        .map(|(f, args)| chunked_call(module, &decoded, f, args, &mut mem))
        .collect();
    let digest = mem.digest();

    let mut oneshot_mem = image.clone();
    let oneshot: Vec<Option<u64>> = calls
        .iter()
        .map(|(f, args)| {
            run_function(module, f, args, &mut oneshot_mem, STEP_LIMIT)
                .unwrap_or_else(|e| panic!("interpreter failed on {f}: {e}"))
        })
        .collect();
    assert_eq!(rets, oneshot, "chunked and one-shot interpreters diverge");
    assert_eq!(digest, oneshot_mem.digest(), "chunked memory diverges");
    (rets, digest)
}

/// Runs the call schedule through the cycle-accurate machine.
fn machine_run(
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) -> (Vec<Option<u64>>, u64) {
    let mut mach = Machine::new(module, SimConfig::default(), image.clone());
    let rets = calls
        .iter()
        .map(|(f, args)| {
            mach.call(f, args)
                .unwrap_or_else(|e| panic!("machine failed on {f}: {e}"))
        })
        .collect();
    (rets, mach.image.digest())
}

fn assert_agree(
    name: &str,
    variant: &str,
    module: &Module,
    image: &MemImage,
    calls: &[(String, Vec<u64>)],
) {
    let (i_rets, i_digest) = interp_run(module, image, calls);
    let (m_rets, m_digest) = machine_run(module, image, calls);
    assert_eq!(
        i_rets, m_rets,
        "{name} [{variant}]: return values diverge between interpreter and machine"
    );
    assert_eq!(
        i_digest, m_digest,
        "{name} [{variant}]: final memory images diverge between interpreter and machine"
    );
}

#[test]
fn interpreter_and_machine_agree_on_every_workload() {
    for (scale, tag) in SCALES {
        for spec in all_workloads() {
            let w = spec.build(scale, SEED);
            let variant = format!("unoptimized/{tag}");
            assert_agree(&w.name, &variant, &w.module, &w.image, &w.calls);
        }
    }
}

#[test]
fn interpreter_and_machine_agree_after_aptget_injection() {
    let cfg = PipelineConfig::default();
    for (scale, tag) in SCALES {
        for spec in all_workloads() {
            let w = spec.build(scale, SEED);
            let opt = AptGet::new(cfg)
                .optimize(&w.module, w.image.clone(), &w.calls)
                .unwrap_or_else(|e| panic!("{}: optimization failed: {e}", w.name));
            // The optimized module must also satisfy the workload's own
            // checker under pure architectural execution.
            let (rets, _) = interp_run(&opt.module, &w.image, &w.calls);
            let mut mem = w.image.clone();
            for (f, args) in &w.calls {
                run_function(&opt.module, f, args, &mut mem, STEP_LIMIT)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            }
            (w.check)(&mem, &rets)
                .unwrap_or_else(|e| panic!("{}: interpreter result wrong: {e}", w.name));

            let variant = format!("APT-GET/{tag}");
            assert_agree(&w.name, &variant, &opt.module, &w.image, &w.calls);
        }
    }
}

#[test]
fn injection_preserves_interpreter_semantics() {
    // Prefetches are architectural no-ops: for each workload the
    // *interpreter* must produce identical results on the original and
    // the injected module (no machine involved at all).
    let cfg = PipelineConfig::default();
    for (scale, _) in SCALES {
        for spec in all_workloads() {
            let w = spec.build(scale, SEED);
            let opt = AptGet::new(cfg)
                .optimize(&w.module, w.image.clone(), &w.calls)
                .unwrap_or_else(|e| panic!("{}: optimization failed: {e}", w.name));
            let (base_rets, base_digest) = interp_run(&w.module, &w.image, &w.calls);
            let (opt_rets, opt_digest) = interp_run(&opt.module, &w.image, &w.calls);
            assert_eq!(
                base_rets, opt_rets,
                "{}: injection changed return values",
                w.name
            );
            assert_eq!(
                base_digest, opt_digest,
                "{}: injection changed memory",
                w.name
            );
        }
    }
}
