//! Campaign determinism: the evaluation runner's report must be a pure
//! function of (scale, seed, pipeline config) — independent of worker
//! count, scheduling, and profile-cache state.
//!
//! These are the acceptance tests for `apteval`: byte-identical tables
//! across `--jobs` values, and a warm profile cache that changes wall
//! time but not one byte of the comparison.

use apt_bench::cache::ProfileCache;
use apt_bench::eval::{run_campaign, CampaignConfig, CampaignReport};

/// Tiny, fast campaign over a workload mix that exercises both loop
/// shapes (IS: flat induction; BFS: nested with fallback metadata).
fn config(jobs: usize, cache: Option<ProfileCache>) -> CampaignConfig {
    CampaignConfig {
        workloads: vec!["BFS".into(), "IS".into(), "RandAcc".into()],
        cache,
        ..CampaignConfig::new(0.004, 42, jobs)
    }
}

fn run(jobs: usize, cache: Option<ProfileCache>) -> CampaignReport {
    run_campaign(&config(jobs, cache)).expect("campaign runs")
}

/// A scratch cache directory unique to this test (tests in one binary
/// can run concurrently; the process id alone is not enough).
fn scratch_cache(tag: &str) -> ProfileCache {
    let dir = std::env::temp_dir().join(format!("apt-campaign-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ProfileCache::new(dir)
}

/// The parallel-jobs axis of the CI matrix: `$APT_JOBS` when set (the
/// workflow runs 1 and 4), plus a wider fixed sweep.
fn jobs_axis() -> Vec<usize> {
    let mut axis = vec![2, 8];
    if let Some(j) = std::env::var("APT_JOBS").ok().and_then(|v| v.parse().ok()) {
        axis.push(j);
    }
    axis
}

#[test]
fn report_is_byte_identical_at_any_jobs_value() {
    let reference = run(1, None).table_text();
    assert!(reference.contains("BFS"), "table lists workloads");
    assert!(reference.contains("geomean"), "table has the geomean row");
    for jobs in jobs_axis() {
        let table = run(jobs, None).table_text();
        assert_eq!(
            reference, table,
            "campaign table differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn warm_cache_reproduces_the_cold_comparison() {
    let cache = scratch_cache("warm");
    let dir = cache.dir().to_path_buf();

    let cold = run(2, Some(cache));
    assert_eq!(
        cold.cells_with_cache_hit(),
        0,
        "first run over an empty cache cannot hit"
    );
    let (hits, misses, stores) = cold.cache_counts;
    assert_eq!(hits, 0);
    assert_eq!(misses, 3, "one profiling run per APT-GET cell");
    assert_eq!(stores, 3, "every collected profile is persisted");

    let warm = run(2, Some(ProfileCache::new(&dir)));
    assert_eq!(
        warm.cells_with_cache_hit(),
        3,
        "second run must serve every profile from the cache"
    );
    assert_eq!(
        cold.table_text(),
        warm.table_text(),
        "cache hits changed the comparison table"
    );

    // Cached runs are also jobs-independent.
    let warm_serial = run(1, Some(ProfileCache::new(&dir)));
    assert_eq!(cold.table_text(), warm_serial.table_text());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncached_and_cached_campaigns_agree() {
    let cache = scratch_cache("agree");
    let dir = cache.dir().to_path_buf();
    let with_cache = run(4, Some(cache)).table_text();
    let without = run(4, None).table_text();
    assert_eq!(with_cache, without, "caching must not influence results");
    let _ = std::fs::remove_dir_all(&dir);
}
