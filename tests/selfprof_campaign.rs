//! Self-profiling acceptance: enabling the profiler must not change one
//! byte of the campaign comparison at any `--jobs` value, and the
//! collected profile must cover the instrumented layers end to end
//! (campaign cell → machine step stages → memory hierarchy → reports).

use std::sync::Mutex;

use apt_bench::eval::{run_campaign, CampaignConfig, CampaignReport};
use apt_bench::selfprof_report::render_selfprof_html;
use apt_selfprof::Profile;

/// The global collector is process-wide; session tests must not overlap.
static SESSION_GATE: Mutex<()> = Mutex::new(());

fn run(jobs: usize) -> CampaignReport {
    let cfg = CampaignConfig {
        workloads: vec!["BFS".into(), "RandAcc".into()],
        cache: None,
        ..CampaignConfig::new(0.004, 42, jobs)
    };
    run_campaign(&cfg).expect("campaign runs")
}

fn profiled_run(jobs: usize) -> (CampaignReport, Profile) {
    let session = apt_selfprof::begin_monotonic();
    let report = run(jobs);
    (report, session.finish())
}

#[test]
fn profiling_never_changes_the_comparison_table() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let reference = run(1).table_text();

    for jobs in [1, 4] {
        let (report, profile) = profiled_run(jobs);
        assert_eq!(
            reference,
            report.table_text(),
            "profiling changed the campaign table at --jobs {jobs}"
        );
        assert!(!profile.is_empty(), "campaign produced no profile");
    }
}

#[test]
fn campaign_profile_covers_the_instrumented_layers() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_, profile) = profiled_run(2);

    // Worker threads label themselves; jobs=2 must show both.
    let labels: Vec<&str> = profile.threads.iter().map(|(l, _)| l.as_str()).collect();
    assert!(
        labels.contains(&"worker-0") && labels.contains(&"worker-1"),
        "expected worker labels, got {labels:?}"
    );

    // The merged tree must span the instrumented layers: the campaign
    // cell at the root, the machine's step stages and the memory
    // hierarchy below it. (Presence, not exact counts: other scopes from
    // the same process may coexist in the tree.)
    let merged = profile.merged();
    let folded = merged.folded();
    for path in [
        "bench/cell",
        "bench/cell;cpu/exec",
        "bench/cell;cpu/exec;cpu/step/fetch",
        "bench/cell;cpu/exec;cpu/step/exec",
        "bench/cell;cpu/exec;cpu/step/exec;cpu/step/mem",
    ] {
        assert!(
            folded
                .lines()
                .any(|l| l.starts_with(&format!("{path} ")) || l.starts_with(&format!("{path};"))),
            "scope `{path}` missing from folded profile:\n{folded}"
        );
    }
    assert!(merged.conserves(), "inclusive times do not conserve");

    // The demand-load path sits under the machine's mem stage.
    assert!(
        folded.contains("cpu/step/mem;mem/hier/demand_load"),
        "memory hierarchy not profiled under the mem stage:\n{folded}"
    );

    // The HTML artifact renders from a real profile and stays offline.
    let html = render_selfprof_html(&profile);
    assert!(html.contains("bench/cell"));
    assert!(!html.contains("<script"));
    assert!(!html.contains("http"));
}

#[test]
fn disabled_profiler_collects_nothing_from_a_campaign() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(|e| e.into_inner());
    // No session: all the prof_scope! instrumentation must stay inert.
    run(2);
    let (_, profile) = profiled_run(1);
    // Only the session-scoped run contributes; the unprofiled campaign
    // above must not leak scopes into it (hits would double otherwise).
    let merged = profile.merged();
    let cell = merged.node(&["bench/cell"]).expect("profiled run recorded");
    assert_eq!(
        cell.hits, 6,
        "expected one bench/cell hit per cell (2 workloads x 3 variants)"
    );
}
