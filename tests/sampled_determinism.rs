//! Determinism of sampled campaigns: like the detailed campaign, a
//! sampled campaign's report must be a pure function of (scale, seed,
//! pipeline config, sampling schedule) — independent of worker count and
//! repetition. The window-placement jitter is seeded (`--sample-seed`)
//! and computed per window index, never from shared mutable state, so
//! `--jobs` cannot leak into the estimates.

use apt_bench::eval::{run_campaign, CampaignConfig, CampaignReport, SamplingSpec};
use apt_sample::SampleConfig;

fn spec(sample_seed: u64) -> SamplingSpec {
    SamplingSpec {
        sample: SampleConfig {
            period: 4_096,
            window: 1_024,
            warmup: 512,
            seed: sample_seed,
            ..SampleConfig::default()
        },
        check_exact: false,
    }
}

fn run(jobs: usize, sample_seed: u64) -> CampaignReport {
    let cfg = CampaignConfig {
        workloads: vec!["BFS".into(), "IS".into(), "RandAcc".into()],
        cache: None,
        collect_outcomes: true,
        sampling: Some(spec(sample_seed)),
        ..CampaignConfig::new(0.004, 42, jobs)
    };
    run_campaign(&cfg).expect("campaign runs")
}

/// Everything deterministic about a report, as one comparable blob: the
/// rendered table plus every cell's estimated counters and window count.
/// (Wall-clock fields are excluded by construction.)
fn fingerprint(r: &CampaignReport) -> String {
    let mut out = r.table_text();
    for c in &r.cells {
        let s = c.sampled.expect("sampled cell");
        out.push_str(&format!(
            "{} [{}]: cycles={} insts={} windows={} detail={:.6}\n",
            c.workload,
            c.variant.name(),
            c.stats.cycles,
            c.stats.instructions,
            s.windows,
            s.detail_fraction,
        ));
    }
    out
}

#[test]
fn sampled_report_is_byte_identical_across_jobs() {
    let reference = fingerprint(&run(1, 0));
    for jobs in [2, 8] {
        assert_eq!(
            reference,
            fingerprint(&run(jobs, 0)),
            "sampled campaign differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn sampled_report_is_stable_across_repeated_runs() {
    let a = fingerprint(&run(2, 7));
    let b = fingerprint(&run(2, 7));
    assert_eq!(a, b, "same --sample-seed must reproduce byte-for-byte");
}

#[test]
fn sample_seed_moves_the_windows_but_not_the_architecture() {
    let a = run(2, 1);
    let b = run(2, 2);
    // Different jitter seeds sample different windows...
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "distinct --sample-seed values should move the measured windows"
    );
    // ...but the architectural run underneath is identical, so the
    // instruction totals (exact by construction) never move.
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.stats.instructions, y.stats.instructions, "{}", x.workload);
    }
}
