//! Statistical accuracy of SMARTS sampled simulation (`--sampled`).
//!
//! The sampled driver replaces the detailed measurement run with
//! fast-forward + warm + measure windows and *estimates* the full-run
//! counters. These tests run every registry workload under all three
//! variants with `--sampled-check` (each cell also runs the exact
//! detailed measurement) and bound the estimation error:
//!
//! * cycle and IPC errors within 5% on every (workload × variant) cell;
//! * prefetch-outcome *shares* (timely/late/... as fractions of issued)
//!   within a few points of the exact run's shares;
//! * the paper's headline — the speedup *ranking* across workloads —
//!   preserved: any pair of workloads whose exact APT-GET speedups are
//!   clearly separated must order the same way under sampling.
//!
//! Architectural results need no tolerance at all: the sampled run
//! executes every instruction (fast-forwarded ones functionally), so
//! workload checkers pass exactly — `run_cell` already asserts that.

use apt_bench::eval::{run_campaign, CampaignConfig, CampaignReport, SamplingSpec, Variant};
use apt_sample::SampleConfig;

/// Dense-but-sampled schedule: at the tiny test scale the runs are only
/// ~10⁵ instructions, so accuracy needs a high detail fraction. (The
/// default schedule is far sparser — tuned for full-scale campaigns
/// where windows are plentiful.)
fn spec(check_exact: bool) -> SamplingSpec {
    SamplingSpec {
        sample: SampleConfig {
            period: 2_048,
            window: 1_024,
            warmup: 768,
            ..SampleConfig::default()
        },
        check_exact,
    }
}

fn campaign(sampling: Option<SamplingSpec>) -> CampaignReport {
    let cfg = CampaignConfig {
        cache: None,
        collect_outcomes: true,
        sampling,
        // Empty workload list = the full registry (all 13 workloads).
        ..CampaignConfig::new(0.004, 42, 4)
    };
    run_campaign(&cfg).expect("campaign runs")
}

#[test]
fn sampled_estimates_stay_within_error_bounds() {
    let report = campaign(Some(spec(true)));
    assert_eq!(report.comparisons.len(), 13, "full registry");
    for cell in &report.cells {
        let tag = format!("{} [{}]", cell.workload, cell.variant.name());
        let s = cell
            .sampled
            .unwrap_or_else(|| panic!("{tag}: no sampled record"));
        let cycle_err = s.cycle_err.unwrap_or_else(|| panic!("{tag}: unchecked"));
        let ipc_err = s.ipc_err.unwrap();
        assert!(
            cycle_err <= 0.05,
            "{tag}: cycle error {:.2}% exceeds 5% ({} windows, {:.0}% detail)",
            cycle_err * 100.0,
            s.windows,
            s.detail_fraction * 100.0
        );
        assert!(
            ipc_err <= 0.05,
            "{tag}: IPC error {:.2}% exceeds 5%",
            ipc_err * 100.0
        );
    }
}

#[test]
fn sampled_outcome_shares_track_the_exact_run() {
    let exact = campaign(None);
    let sampled = campaign(Some(spec(false)));
    for (e, s) in exact.cells.iter().zip(&sampled.cells) {
        if e.variant != Variant::AptGet {
            continue;
        }
        let tag = &e.workload;
        let eo = e
            .outcomes
            .as_ref()
            .unwrap_or_else(|| panic!("{tag}: exact outcomes"));
        let so = s
            .outcomes
            .as_ref()
            .unwrap_or_else(|| panic!("{tag}: sampled outcomes"));
        let shares = |t: &apt_trace::OutcomeTable| {
            let issued = t.total.issued.max(1) as f64;
            [
                t.total.timely as f64 / issued,
                t.total.late as f64 / issued,
                t.total.early as f64 / issued,
                t.total.useless as f64 / issued,
                t.total.redundant as f64 / issued,
                t.total.dropped as f64 / issued,
            ]
        };
        let (es, ss) = (shares(eo), shares(so));
        for (k, label) in ["timely", "late", "early", "useless", "redundant", "dropped"]
            .iter()
            .enumerate()
        {
            let delta = (es[k] - ss[k]).abs();
            assert!(
                delta <= 0.10,
                "{tag}: {label} share drifts {:.1} points (exact {:.1}%, sampled {:.1}%)",
                delta * 100.0,
                es[k] * 100.0,
                ss[k] * 100.0
            );
        }
    }
}

#[test]
fn sampled_speedup_rankings_match_the_exact_campaign() {
    let report = campaign(Some(spec(true)));
    // Exact per-workload APT-GET speedup from the per-cell exact check;
    // estimated speedup from the sampled counters themselves.
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for chunk in report.cells.chunks_exact(Variant::ALL.len()) {
        let exact = |i: usize| chunk[i].sampled.unwrap().exact_cycles.unwrap() as f64;
        let est = |i: usize| chunk[i].stats.cycles as f64;
        rows.push((
            chunk[0].workload.clone(),
            exact(0) / exact(2),
            est(0) / est(2),
        ));
    }
    // Every clearly-separated pair must order identically. The margin
    // keeps near-ties (which may legitimately flip under estimation
    // noise) out of the comparison; 5%-per-estimate errors compound to
    // ~10% on a speedup ratio.
    const MARGIN: f64 = 1.10;
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            let (wi, exact_i, est_i) = &rows[i];
            let (wj, exact_j, est_j) = &rows[j];
            if exact_i / exact_j > MARGIN {
                assert!(
                    est_i > est_j,
                    "ranking flip: exact says {wi} ({exact_i:.3}) beats {wj} ({exact_j:.3}) \
                     by >{MARGIN}x, sampled says {est_i:.3} vs {est_j:.3}"
                );
            }
        }
    }
}
