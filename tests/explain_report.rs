//! The explain layer, end to end: run the full pipeline on the canonical
//! indirect-access kernel, then check that the `--explain` report tells
//! the story the paper tells — which load is delinquent, what distance
//! Eq. 1 chose, where the hint went — and that the measured per-PC
//! outcome table reconciles *exactly* with the PMU counters.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, Module, Width};
use aptget::{
    chrome_trace_json, execute_traced, format_explain, injected_prefetch_pcs, AptGet,
    PipelineConfig, SpanRecorder, TraceConfig,
};

/// `sum += T[B[i]]` over a table much larger than the scaled LLC — the
/// same shape as the paper's GUPS/hash-join kernels.
fn indirect_program() -> (Module, MemImage, Vec<(String, Vec<u64>)>) {
    let mut module = Module::new("t");
    let f = module.add_function("kernel", &["t", "b", "n"]);
    {
        let mut bd = FunctionBuilder::new(module.function_mut(f));
        let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
        let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
            let x = bd.load_elem(b, iv, Width::W4, false);
            let v = bd.load_elem(t, x, Width::W4, false);
            bd.add(acc, v).into()
        });
        bd.ret(Some(s));
    }
    let mut image = MemImage::new();
    let tlen = 1u32 << 20; // 4 MiB of u32.
    let t: Vec<u32> = (0..tlen).map(|i| i % 1000).collect();
    let b: Vec<u32> = (0..100_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % tlen)
        .collect();
    let tb = image.alloc_u32_slice(&t);
    let bb = image.alloc_u32_slice(&b);
    let calls = vec![("kernel".to_string(), vec![tb, bb, 100_000])];
    (module, image, calls)
}

#[test]
fn explain_report_names_the_decision_and_reconciles_with_pmu() {
    let (module, image, calls) = indirect_program();
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);

    let mut spans = SpanRecorder::new();
    let opt = apt
        .optimize_traced(&module, image.clone(), &calls, &mut spans)
        .unwrap();
    assert_eq!(opt.injection.injected.len(), 1, "{:?}", opt.analysis.notes);
    let hint = &opt.analysis.hints[0];
    assert!(hint.distance >= 2, "distance {}", hint.distance);

    // Measure the optimised module with outcome attribution on.
    let (tuned, trace) = execute_traced(
        &opt.module,
        image,
        &calls,
        &cfg.measure_sim,
        TraceConfig::outcomes(),
    )
    .unwrap();

    // The outcome table must reconcile EXACTLY with the PMU counters.
    let t = &trace.outcomes.total;
    let m = &tuned.stats.mem;
    assert!(trace.outcomes.is_conserved(), "{}", trace.outcomes.render());
    assert_eq!(t.issued, m.sw_pf_issued);
    assert_eq!(t.late, m.fb_hits_swpf);
    assert_eq!(t.dropped, m.sw_pf_dropped_full);
    assert_eq!(t.redundant, m.sw_pf_redundant);
    assert!(t.issued > 0, "optimised run issued no prefetches");

    // Every counted outcome is attributed to an actually-injected PC.
    let pcs = injected_prefetch_pcs(&opt.module);
    assert_eq!(pcs.len(), 1);
    for pc in trace.outcomes.per_pc.keys() {
        assert!(
            pcs.iter().any(|(p, _)| p == pc),
            "outcome table PC {pc:#x} is not an injected prefetch"
        );
    }

    let report = format_explain(&opt, spans.spans(), Some((&tuned.stats, &trace)));

    // Names the delinquent load and the Eq.1/Eq.2 decision...
    assert!(
        report.contains(&format!("load {}", hint.pc)),
        "missing delinquent load:\n{report}"
    );
    assert!(report.contains(&format!("distance {}", hint.distance)));
    assert!(
        report.contains("site Inner"),
        "single-loop kernel must choose the inner site:\n{report}"
    );
    // ...walks through the pipeline phases...
    for phase in [
        "profile-run",
        "delinquency-ranking",
        "injection",
        "o3-cleanup",
    ] {
        assert!(report.contains(phase), "missing phase {phase}:\n{report}");
    }
    // ...and reconciles cleanly.
    assert!(report.contains("[ok]"), "{report}");
    assert!(!report.contains("MISMATCH"), "{report}");

    // The Chrome trace covers the same spans and is structurally valid.
    let json = chrome_trace_json(spans.spans(), Some(&trace));
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"profile-run\""));
    assert!(json.trim_end().ends_with('}'));
}

#[test]
fn explain_without_measurement_still_renders() {
    let (module, image, calls) = indirect_program();
    let apt = AptGet::new(PipelineConfig::default());
    let mut spans = SpanRecorder::new();
    let opt = apt
        .optimize_traced(&module, image, &calls, &mut spans)
        .unwrap();
    let report = format_explain(&opt, spans.spans(), None);
    assert!(report.contains("--- decisions ---"));
    assert!(!report.contains("PMU reconciliation"));
}
