//! The tentpole acceptance test: for every registered workload, a
//! profiling run exported as `perf script` text and re-ingested must
//! reproduce the in-memory profile exactly — the same LBR snapshots,
//! the same PEBS records, the same counters, and therefore the same
//! optimisation decisions down to the serialized hint-file bytes.
//!
//! This closes the loop the §3.6 deployment model depends on: the
//! textual dump is a lossless transport, so profiles collected in
//! production and profiles collected in-process are interchangeable.

use apt_workloads::all_workloads;
use aptget::{
    execute, parse_str, AggregateProfile, AptGet, IdentityRemap, PipelineConfig, ProfileDb,
};

/// Small scale keeps debug-mode profiling runs reasonable while still
/// collecting hundreds of LBR snapshots per app.
const TEST_SCALE: f64 = 0.02;

#[test]
fn export_ingest_analyze_round_trips_every_workload() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    for spec in all_workloads() {
        let w = spec.build(TEST_SCALE, 42);
        let exec = execute(&w.module, w.image.clone(), &w.calls, &cfg.profile_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        let dump = apt_cpu::perfscript::export_perf_script(&exec.profile, &exec.stats);
        let ing = parse_str(&dump, &IdentityRemap)
            .unwrap_or_else(|e| panic!("{}: export does not re-parse: {e}", spec.name));

        // The dump is a lossless transport: nothing skipped, every
        // sample identical.
        assert_eq!(ing.skipped_unknown, 0, "{}", spec.name);
        assert_eq!(ing.skipped_unmapped, 0, "{}", spec.name);
        assert_eq!(
            ing.profile.lbr_samples, exec.profile.lbr_samples,
            "{}: LBR snapshots differ after round-trip",
            spec.name
        );
        assert_eq!(
            ing.profile.pebs, exec.profile.pebs,
            "{}: PEBS records differ after round-trip",
            spec.name
        );
        let stats = ing
            .stats
            .unwrap_or_else(|| panic!("{}: stats header lost", spec.name));
        assert_eq!(stats.instructions, exec.stats.instructions, "{}", spec.name);
        assert_eq!(stats.cycles, exec.stats.cycles, "{}", spec.name);
        assert_eq!(stats.branches, exec.stats.branches, "{}", spec.name);
        assert_eq!(
            stats.taken_branches, exec.stats.taken_branches,
            "{}",
            spec.name
        );

        // Identical profiles ⇒ byte-identical analysis output.
        let direct = apt.optimize_with_profile(&w.module, &exec.profile, exec.stats);
        let ingested = apt.optimize_with_profile(&w.module, &ing.profile, stats);
        assert_eq!(
            aptget::hintfile::serialize_hints(&direct.analysis.hints),
            aptget::hintfile::serialize_hints(&ingested.analysis.hints),
            "{}: hint files diverge after round-trip",
            spec.name
        );
        assert_eq!(
            apt_lir::print::module_to_string(&direct.module),
            apt_lir::print::module_to_string(&ingested.module),
            "{}: optimised modules diverge after round-trip",
            spec.name
        );
    }
}

/// The database path: two ingested epochs of the same workload drive
/// `optimize_from_db` deterministically, and the result still computes
/// what the baseline computes.
#[test]
fn db_backed_optimization_is_deterministic_and_correct() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "BFS")
        .expect("BFS registered");
    let w = spec.build(TEST_SCALE, 42);

    let mut db = ProfileDb::new();
    for seed in [42u64, 43] {
        let wi = spec.build(TEST_SCALE, seed);
        let exec = execute(&wi.module, wi.image, &wi.calls, &cfg.profile_sim).unwrap();
        let dump = apt_cpu::perfscript::export_perf_script(&exec.profile, &exec.stats);
        let ing = parse_str(&dump, &IdentityRemap).unwrap();
        db.push_epoch(
            format!("seed-{seed}"),
            AggregateProfile::from_profile(&ing.profile, &ing.stats_or_default()),
        );
    }

    let a = apt.optimize_from_db(&w.module, &db);
    let b = apt.optimize_from_db(&w.module, &db);
    assert_eq!(
        apt_lir::print::module_to_string(&a.module),
        apt_lir::print::module_to_string(&b.module)
    );
    assert!(
        !a.injection.injected.is_empty(),
        "DB path injected nothing: {:?}",
        a.analysis.notes
    );

    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    let tuned = execute(&a.module, w.image, &w.calls, &cfg.measure_sim).unwrap();
    assert_eq!(
        base.rets, tuned.rets,
        "DB-driven prefetching changed results"
    );
}
