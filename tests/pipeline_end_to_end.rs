//! End-to-end pipeline behaviour: the profile finds the right loads, the
//! model makes the paper's decisions, and the optimised binaries are
//! faster where the paper says they should be.
//!
//! These tests run at reduced scale (debug-mode simulation); the full-size
//! behaviour is exercised by the `apt-bench` figure benches.

use apt_passes::Site;
use apt_workloads::micro::{self, Complexity, MicroParams};
use apt_workloads::registry::by_name;
use aptget::{execute, AptGet, PipelineConfig};

fn micro_params() -> MicroParams {
    MicroParams {
        outer: 120,
        inner: 256,
        complexity: Complexity::Low,
        t_len: 1 << 18,  // 1 MiB of u32 > the 512 KiB scaled LLC.
        window: 1 << 16, // 256 KiB window.
        seed: 0xFEED,
    }
}

#[test]
fn microbenchmark_pipeline_finds_and_fixes_the_indirect_load() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = micro::build(micro_params());
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();

    assert_eq!(
        opt.analysis.hints.len(),
        1,
        "exactly the T[B[i]+b0] load is delinquent: {:?}",
        opt.analysis.notes
    );
    let hint = &opt.analysis.hints[0];
    assert!(hint.share > 0.5, "the load dominates LLC misses");
    assert!(
        hint.mc_latency > hint.ic_latency,
        "misses dominate the loop"
    );
    assert_eq!(opt.injection.injected.len(), 1);

    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    let tuned = execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    assert_eq!(base.rets, tuned.rets);
    let speedup = base.stats.cycles as f64 / tuned.stats.cycles as f64;
    assert!(speedup > 1.5, "speedup {speedup}");

    // Timeliness: the tuned run has essentially no late prefetches and a
    // much lower demand MPKI.
    assert!(tuned.stats.mem.late_prefetch_ratio() < 0.2);
    assert!(tuned.stats.mpki() < base.stats.mpki() * 0.6);
}

#[test]
fn eq2_selects_the_outer_site_for_short_bucket_loops() {
    // HJ2: two-slot buckets — inner-loop prefetching cannot be timely.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = by_name("HJ2-NPO").expect("registered").build(0.08, 42);
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
    assert!(
        !opt.analysis.hints.is_empty(),
        "the bucket load must be delinquent: {:?}",
        opt.analysis.notes
    );
    assert!(
        opt.analysis.hints.iter().any(|h| h.site == Site::Outer),
        "Eq. 2 must move the prefetch to the outer (probe) loop: {:?}",
        opt.analysis.hints
    );
    let trip = opt.analysis.hints[0].trip_count.expect("measured");
    assert!((1.5..4.0).contains(&trip), "HJ2 trip ≈ 2, got {trip}");
}

#[test]
fn eq2_keeps_the_inner_site_for_long_loops() {
    // IS: the counting loop runs for the whole key array.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = by_name("IS").expect("registered").build(0.2, 42);
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
    assert!(!opt.analysis.hints.is_empty(), "{:?}", opt.analysis.notes);
    assert!(
        opt.analysis.hints.iter().all(|h| h.site == Site::Inner),
        "single long loops must stay inner: {:?}",
        opt.analysis.hints
    );
}

#[test]
fn cache_friendly_gathers_are_left_alone() {
    // CG's banded gather mostly hits: the MPKI gate must refuse to inject.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = by_name("CG").expect("registered").build(0.05, 42);
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
    assert!(
        opt.injection.injected.is_empty(),
        "CG must not be instrumented: {:?}",
        opt.analysis.hints
    );
}

#[test]
fn distance_tracks_work_complexity() {
    // Fig. 1's law: heavier loop bodies need smaller distances.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let dist_for = |cx: Complexity| {
        let w = micro::build(MicroParams {
            complexity: cx,
            ..micro_params()
        });
        let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
        opt.analysis.hints[0].distance
    };
    let lo = dist_for(Complexity::Low);
    let hi = dist_for(Complexity::High);
    assert!(
        lo > hi,
        "low-complexity loops need farther prefetching: low {lo} vs high {hi}"
    );
}

#[test]
fn profiling_overhead_is_a_single_run() {
    // §4.10: APT-GET needs exactly one profiling execution.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = micro::build(micro_params());
    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
    // The profiling run executes the same instruction stream.
    assert_eq!(opt.profile_stats.instructions, base.stats.instructions);
}

#[test]
fn hint_files_round_trip_through_the_autofdo_flow() {
    // The deployment model of §3.4/§3.6: profile once, persist the hints
    // as a text artefact, and consume them in a later compilation of the
    // (structurally identical) program.
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let w = micro::build(micro_params());
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();

    // Serialise → parse → resolve against a *fresh* build of the module.
    let text = aptget::hintfile::serialize_hints(&opt.analysis.hints);
    let records = aptget::hintfile::parse(&text).unwrap();
    assert_eq!(records.len(), opt.analysis.hints.len());

    let fresh = micro::build(micro_params());
    let (specs, dropped) = aptget::hintfile::resolve_all(&records, &fresh.module);
    assert_eq!(dropped, 0, "PCs must be stable across builds");

    let mut m = fresh.module.clone();
    let report = apt_passes::inject_prefetches(&mut m, &specs);
    assert_eq!(report.injected.len(), specs.len());
    apt_passes::optimize_module(&mut m);

    let base = execute(
        &fresh.module,
        fresh.image.clone(),
        &fresh.calls,
        &cfg.measure_sim,
    )
    .unwrap();
    let tuned = execute(&m, fresh.image.clone(), &fresh.calls, &cfg.measure_sim).unwrap();
    assert_eq!(base.rets, tuned.rets);
    assert!(
        tuned.stats.cycles < base.stats.cycles,
        "hints from a file must deliver the same win"
    );
}
