//! Determinism: the whole pipeline — workload generation, simulation,
//! profiling, analysis, injection — is bit-for-bit reproducible.

use apt_workloads::all_workloads;
use aptget::{execute, AptGet, PipelineConfig};

#[test]
fn identical_builds_simulate_identically() {
    let cfg = PipelineConfig::default();
    for spec in all_workloads().into_iter().take(6) {
        let (a, b) = (spec.build(0.006, 11), spec.build(0.006, 11));
        let ea = execute(&a.module, a.image.clone(), &a.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let eb = execute(&b.module, b.image.clone(), &b.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(ea.stats.cycles, eb.stats.cycles, "{}", spec.name);
        assert_eq!(
            ea.stats.instructions, eb.stats.instructions,
            "{}",
            spec.name
        );
        assert_eq!(ea.rets, eb.rets, "{}", spec.name);
    }
}

#[test]
fn different_seeds_produce_different_inputs() {
    let spec = apt_workloads::registry::by_name("BFS").expect("registered");
    let cfg = PipelineConfig::default();
    let a = spec.build(0.006, 1);
    let b = spec.build(0.006, 2);
    let ea = execute(&a.module, a.image.clone(), &a.calls, &cfg.measure_sim).unwrap();
    let eb = execute(&b.module, b.image.clone(), &b.calls, &cfg.measure_sim).unwrap();
    // Different graphs: almost surely different cycle counts.
    assert_ne!(ea.stats.cycles, eb.stats.cycles);
}

#[test]
fn optimizer_output_is_reproducible() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let spec = apt_workloads::registry::by_name("HJ2-NPO").expect("registered");
    let w1 = spec.build(0.02, 5);
    let w2 = spec.build(0.02, 5);
    let o1 = apt
        .optimize(&w1.module, w1.image.clone(), &w1.calls)
        .unwrap();
    let o2 = apt
        .optimize(&w2.module, w2.image.clone(), &w2.calls)
        .unwrap();
    assert_eq!(
        apt_lir::print::module_to_string(&o1.module),
        apt_lir::print::module_to_string(&o2.module)
    );
    assert_eq!(o1.analysis.hints.len(), o2.analysis.hints.len());
    for (a, b) in o1.analysis.hints.iter().zip(&o2.analysis.hints) {
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.site, b.site);
    }
}

#[test]
fn profiling_does_not_perturb_results() {
    // Heisenberg check: the profiling run (LBR + PEBS on) computes the
    // same results as the measurement run.
    let cfg = PipelineConfig::default();
    let spec = apt_workloads::registry::by_name("IS").expect("registered");
    let w = spec.build(0.01, 9);
    let prof = execute(&w.module, w.image.clone(), &w.calls, &cfg.profile_sim).unwrap();
    let meas = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    assert_eq!(prof.rets, meas.rets);
    assert_eq!(prof.stats.cycles, meas.stats.cycles);
    assert!(!prof.profile.lbr_samples.is_empty());
    assert!(meas.profile.lbr_samples.is_empty());
}
