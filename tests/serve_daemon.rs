//! Acceptance test for the reoptimization daemon, on a real workload:
//! two profiling runs of BFS — one on the baseline machine, one with
//! DRAM four times slower (the "workload moved to worse hardware"
//! scenario) — are exported as perf-script dumps and uploaded from
//! *parallel* client connections. The daemon must detect the Eq. 1
//! drift, re-derive hints through the real `optimize_from_db` path, and
//! hot-swap a `current.hints` that is **byte-identical** to an offline
//! re-derivation from the shard it wrote — closing the §3.6 loop:
//! online daemon and offline rebuild can never disagree.

use std::collections::BTreeSet;
use std::sync::Arc;

use apt_serve::oplog::{EpochOutcome, OpKind, Stage};
use apt_serve::{
    read_oplog_dir, Client, Daemon, FnReoptimizer, OpLogConfig, ServeConfig, ShardStore,
};
use apt_workloads::all_workloads;
use aptget::{
    execute, parse_str, AggregateProfile, AptGet, IdentityRemap, PipelineConfig, ProfileDb,
};

const TEST_SCALE: f64 = 0.02;

/// One profiling run of BFS exported as perf-script text, with DRAM
/// latency scaled by `dram_scale`.
fn profile_dump(dram_scale: u64) -> String {
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "BFS")
        .expect("BFS registered");
    let w = spec.build(TEST_SCALE, 42);
    let mut cfg = PipelineConfig::default();
    cfg.profile_sim.mem.dram_latency *= dram_scale;
    let exec = execute(&w.module, w.image, &w.calls, &cfg.profile_sim).expect("profiling run");
    apt_cpu::perfscript::export_perf_script(&exec.profile, &exec.stats)
}

#[test]
fn daemon_hot_swap_matches_offline_reoptimization() {
    let root = std::env::temp_dir().join(format!("apt-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // The daemon's reoptimizer is the *real* pipeline: the same
    // `optimize_from_db` + `serialize_hints` the offline `hints` verb
    // uses, bound to the BFS module.
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "BFS")
        .expect("BFS registered");
    let module = spec.build(TEST_SCALE, 42).module;
    let apt = AptGet::new(PipelineConfig::default());
    let module2 = module.clone();
    let reopt = Arc::new(FnReoptimizer(move |_: &str, db: &ProfileDb| {
        let opt = apt.optimize_from_db(&module2, db);
        Ok(aptget::hintfile::serialize_hints(&opt.analysis.hints).into_bytes())
    }));

    let registry = apt_metrics::Registry::new();
    let mut cfg = ServeConfig::new("127.0.0.1:0", root.join("db"), root.join("hints"));
    cfg.registry = registry.clone();
    cfg.reopt_threshold = 0.25;
    cfg.oplog = Some(OpLogConfig::new(root.join("oplog")));
    let daemon = match Daemon::start(cfg, reopt) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("skipping serve e2e test: cannot bind a socket here ({e})");
            return;
        }
    };
    let addr = daemon.addr();

    // Baseline machine vs 4x-slower DRAM: Eq. 1's latency term moves,
    // so the deployed prefetch distances go stale.
    let base = profile_dump(1);
    let moved = profile_dump(4);

    // Parallel clients, one traced epoch each; arrival order is
    // whatever the scheduler gives us.
    const TRACE_A: u64 = 0xA1;
    const TRACE_B: u64 = 0xB2;
    let uploads = [
        ("epoch-a-base", TRACE_A, base.clone()),
        ("epoch-b-moved", TRACE_B, moved.clone()),
    ];
    let replies: Vec<_> = uploads
        .map(|(label, trace, text)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .upload_reader_traced(
                        "BFS",
                        label,
                        trace,
                        text.len() as u64,
                        &mut text.as_bytes(),
                    )
                    .expect("upload");
                assert_eq!(reply.trace, trace, "reply must echo the client's trace ID");
                reply
            })
        })
        .into_iter()
        .map(|h| h.join().expect("uploader"))
        .collect();

    // Whichever upload completed the 2-epoch shard saw the drift.
    assert!(
        replies.iter().any(|r| r.drifted),
        "4x DRAM latency must register as drift: {replies:?}"
    );
    assert!(
        replies.iter().any(|r| r.generation == Some(1)),
        "drift must hot-swap generation 1: {replies:?}"
    );
    let mut status_client = Client::connect(addr).expect("connect");
    let status = status_client.status("BFS").expect("status");
    assert!(
        status.starts_with("tenant BFS: 2 epoch(s), hints active\n"),
        "{status}"
    );
    daemon.shutdown();

    // The shard the daemon wrote is byte-identical to an offline encode
    // of the same two epochs in canonical label order.
    let store = ShardStore::open(root.join("db")).unwrap();
    let shard_bytes = std::fs::read(store.shard_path("BFS")).unwrap();
    let mut offline_db = ProfileDb::new();
    for (label, text) in [("epoch-a-base", &base), ("epoch-b-moved", &moved)] {
        let ing = parse_str(text, &IdentityRemap).expect("dump re-parses");
        offline_db.push_epoch(
            label,
            AggregateProfile::from_profile(&ing.profile, &ing.stats_or_default()),
        );
    }
    let offline_path = root.join("offline.aptdb");
    offline_db.save(&offline_path).unwrap();
    assert_eq!(
        shard_bytes,
        std::fs::read(&offline_path).unwrap(),
        "daemon shard must equal the offline encode"
    );

    // The hot-swapped hint file is byte-identical to an offline
    // re-derivation from that shard.
    let offline_opt = AptGet::new(PipelineConfig::default()).optimize_from_db(&module, &offline_db);
    let offline_hints = aptget::hintfile::serialize_hints(&offline_opt.analysis.hints);
    assert!(
        !offline_opt.injection.injected.is_empty(),
        "BFS must yield prefetch hints: {:?}",
        offline_opt.analysis.notes
    );
    let swapped = std::fs::read_to_string(root.join("hints/BFS/current.hints")).unwrap();
    assert_eq!(
        swapped, offline_hints,
        "hot-swapped hints must equal offline optimize_from_db output"
    );
    assert_eq!(
        std::fs::read_to_string(root.join("hints/BFS/gen-000001.hints")).unwrap(),
        offline_hints
    );

    // Drift report sidecar and metrics reflect the swap.
    let drift_txt = std::fs::read_to_string(root.join("hints/BFS/drift.txt")).unwrap();
    assert!(drift_txt.contains("epoch-b-moved"), "{drift_txt}");
    assert_eq!(
        registry.counter_value("apt_serve_epochs_ingested_total", &[("tenant", "BFS")]),
        Some(2)
    );
    assert_eq!(
        registry.counter_value("apt_serve_reoptimize_total", &[("tenant", "BFS")]),
        Some(1)
    );

    // The op-log validates, and every uploaded epoch carries a complete
    // span chain — parse → queue → commit → drift — under its trace ID.
    let records = read_oplog_dir(&root.join("oplog")).expect("op-log must validate");
    for trace in [TRACE_A, TRACE_B] {
        let stages: BTreeSet<&str> = records
            .iter()
            .filter_map(|r| match &r.kind {
                OpKind::Span {
                    trace: t, stage, ..
                } if *t == trace => Some(stage.name()),
                _ => None,
            })
            .collect();
        for stage in [Stage::Parse, Stage::Queue, Stage::Commit, Stage::Drift] {
            assert!(
                stages.contains(stage.name()),
                "trace {trace:#x} is missing its {} span (has {stages:?})",
                stage.name()
            );
        }
    }
    for (label, trace, _) in [
        ("epoch-a-base", TRACE_A, ()),
        ("epoch-b-moved", TRACE_B, ()),
    ] {
        assert!(
            records.iter().any(|r| matches!(&r.kind,
                OpKind::Epoch { trace: t, label: l, outcome: EpochOutcome::Accepted, .. }
                    if *t == trace && l == label)),
            "missing accepted-epoch record for {label} under trace {trace:#x}"
        );
    }

    // Recorded swaps and generation files on disk agree exactly.
    let logged_gens: BTreeSet<u64> = records
        .iter()
        .filter_map(|r| match &r.kind {
            OpKind::Swap { generation, .. } => Some(*generation),
            _ => None,
        })
        .collect();
    let disk_gens: BTreeSet<u64> = std::fs::read_dir(root.join("hints/BFS"))
        .expect("hints dir")
        .filter_map(|e| {
            let name = e
                .expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned();
            name.strip_prefix("gen-")
                .and_then(|s| s.strip_suffix(".hints"))
                .and_then(|s| s.parse().ok())
        })
        .collect();
    assert_eq!(
        logged_gens, disk_gens,
        "op-log swap records must match generation files on disk"
    );

    let _ = std::fs::remove_dir_all(&root);
}
