//! The golden invariant: prefetch injection — any scheme, any distance,
//! any site — never changes what a program computes.

use apt_passes::{inject_prefetches, InjectionSpec, Site};
use apt_workloads::all_workloads;
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, AptGet, PipelineConfig};
use proptest::prelude::*;

#[test]
fn aj_injection_preserves_results_on_all_workloads() {
    let cfg = PipelineConfig::default();
    for spec in all_workloads() {
        let w = spec.build(0.008, 3);
        let (m, _) = ainsworth_jones_optimize(&w.module, 16);
        apt_lir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let exec = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        (w.check)(&exec.image, &exec.rets).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn apt_get_injection_preserves_results_on_all_workloads() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    for spec in all_workloads() {
        let w = spec.build(0.008, 3);
        let opt = apt
            .optimize(&w.module, w.image.clone(), &w.calls)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        apt_lir::verify::verify_module(&opt.module)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let exec = execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        (w.check)(&exec.image, &exec.rets).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any static distance on the microbenchmark preserves the result.
    #[test]
    fn any_distance_preserves_micro_results(distance in 1u64..2048) {
        let cfg = PipelineConfig::default();
        let w = micro::build(MicroParams {
            outer: 8,
            inner: 64,
            complexity: Complexity::Low,
            t_len: 1 << 14,
            window: 1 << 12,
            seed: 5,
        });
        let (m, report) = ainsworth_jones_optimize(&w.module, distance);
        prop_assert_eq!(report.injected.len(), 1);
        let exec = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
        prop_assert!((w.check)(&exec.image, &exec.rets).is_ok());
    }

    /// Any (site, distance, fanout) combination on the nested micro
    /// preserves the result.
    #[test]
    fn any_site_config_preserves_micro_results(
        distance in 1u64..128,
        outer_site in proptest::bool::ANY,
        fanout in 1u64..16,
    ) {
        let cfg = PipelineConfig::default();
        let w = micro::build(MicroParams {
            outer: 32,
            inner: 16,
            complexity: Complexity::Low,
            t_len: 1 << 14,
            window: 1 << 10,
            seed: 6,
        });
        let loads = apt_passes::inject::detect_indirect_loads(&w.module);
        prop_assert_eq!(loads.len(), 1);
        let (func, load) = loads[0];
        let spec = InjectionSpec {
            func,
            load,
            distance,
            site: if outer_site { Site::Outer } else { Site::Inner },
            fanout,
            fallback_inner_distance: Some(1),
        };
        let mut m = w.module.clone();
        let report = inject_prefetches(&mut m, &[spec]);
        prop_assert_eq!(report.injected.len(), 1);
        apt_lir::verify::verify_module(&m).unwrap();
        let exec = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
        prop_assert!((w.check)(&exec.image, &exec.rets).is_ok());
    }
}
