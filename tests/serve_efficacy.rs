//! Acceptance test for the hint-efficacy ledger and regression
//! auto-rollback, on a real workload: BFS runs under *good* hints
//! (prefetch distance tuned to this machine — fills complete right
//! before their demand) and under deliberately *detuned* hints
//! (distance cranked to 4096, so prefetched lines go redundant or die
//! unused), each traced with per-PC prefetch-outcome attribution and
//! exported as generation-tagged perf-script dumps. The daemon ingests
//! good-generation evidence, hot-swaps a detuned generation, watches
//! its timely share collapse across the efficacy window, and must roll
//! itself back: `current.hints` byte-identical to the prior
//! generation, with the decision audited on the swap log, the op-log,
//! and the metrics registry.

use std::sync::Arc;

use apt_serve::{
    Client, Daemon, EfficacyLedger, FnReoptimizer, HintSwapper, OpKind, OpLogConfig, ServeConfig,
    ShardStore,
};
use apt_trace::OutcomeTable;
use apt_workloads::all_workloads;
use aptget::{ainsworth_jones_optimize, execute_traced, PipelineConfig, ProfileDb, TraceConfig};
use aptget::{parse_str, AggregateProfile, IdentityRemap};

const TEST_SCALE: f64 = 0.02;
/// Epochs of evidence a generation needs before it is judged.
const WINDOW: u64 = 2;
/// Timely-share regression that triggers the rollback.
const THRESHOLD: f64 = 0.1;

fn bfs_build() -> (apt_lir::Module, apt_cpu::MemImage, Vec<(String, Vec<u64>)>) {
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "BFS")
        .expect("BFS registered");
    let w = spec.build(TEST_SCALE, 42);
    (w.module, w.image, w.calls)
}

/// Runs `module` with outcome tracing and exports the run as a
/// generation-tagged perf-script dump (plus the raw outcome table for
/// the test's own share arithmetic).
fn traced_dump(
    module: &apt_lir::Module,
    image: apt_cpu::MemImage,
    calls: &[(String, Vec<u64>)],
    generation: u64,
) -> (String, OutcomeTable) {
    let cfg = PipelineConfig::default();
    let (exec, report) = execute_traced(
        module,
        image,
        calls,
        &cfg.profile_sim,
        TraceConfig::outcomes(),
    )
    .expect("traced run");
    let text = apt_cpu::perfscript::export_perf_script_tagged(
        &exec.profile,
        &exec.stats,
        generation,
        &report.outcomes,
    );
    (text, report.outcomes)
}

/// The ledger's metric: timely issues over all issues.
fn timely_share(table: &OutcomeTable) -> f64 {
    let t = &table.total;
    t.timely as f64 / t.issued.max(1) as f64
}

#[test]
fn regressing_hint_generation_rolls_back_end_to_end() {
    let root = std::env::temp_dir().join(format!("apt-efficacy-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Good hints: prefetch distance 1 — on this machine one iteration
    // of head start covers the fill, so most issues land timely.
    let (module, _image, _calls) = bfs_build();
    let (good_module, good_report) = ainsworth_jones_optimize(&module, 1);
    assert!(
        !good_report.injected.is_empty(),
        "tuned variant must inject prefetches"
    );
    let good_hints = b"# tuned hints: distance 1\n".to_vec();

    // Detuned hints: distance cranked to 4096 — prefetches run so far
    // ahead of the demand stream that almost every issue is redundant
    // or dies unused (the paper's stale-distance failure mode).
    let (detuned_module, detuned_report) = ainsworth_jones_optimize(&module, 4096);
    assert!(
        !detuned_report.injected.is_empty(),
        "detuned variant must still inject"
    );
    let detuned_hints = b"# detuned hints: all distances 4096\n".to_vec();

    // One traced run per hint regime: the tuned module's evidence is
    // tagged generation 1, the detuned module's generation 2.
    let (_, g_image, g_calls) = bfs_build();
    let (good_dump, good_table) = traced_dump(&good_module, g_image, &g_calls, 1);
    let (_, d_image, d_calls) = bfs_build();
    let (detuned_dump, detuned_table) = traced_dump(&detuned_module, d_image, &d_calls, 2);
    let good_share = timely_share(&good_table);
    let detuned_share = timely_share(&detuned_table);
    assert!(
        good_share - detuned_share > THRESHOLD,
        "distance-4096 prefetches must regress the timely share beyond the policy threshold: \
         good {good_share:.4} vs detuned {detuned_share:.4}"
    );

    // Seed generation 1 with the good hints — the state a production
    // fleet is in before the daemon's next (bad) reoptimization.
    let swapper = HintSwapper::open(root.join("hints/BFS")).expect("open swapper");
    assert_eq!(swapper.swap_in(&good_hints, "seed good hints").unwrap(), 1);

    // The daemon's reoptimizer deterministically "improves" hints into
    // the detuned bytes — the bad deploy the ledger must catch. Its
    // constant output keeps later refreshes resolving `unchanged`, so
    // generation 2 stays active while its evidence accumulates.
    let rigged = detuned_hints.clone();
    let reopt = Arc::new(FnReoptimizer(move |_: &str, _: &ProfileDb| {
        Ok(rigged.clone())
    }));

    let registry = apt_metrics::Registry::new();
    let mut cfg = ServeConfig::new("127.0.0.1:0", root.join("db"), root.join("hints"));
    cfg.registry = registry.clone();
    cfg.reopt_threshold = 0.25;
    cfg.efficacy_window = WINDOW;
    cfg.efficacy_threshold = THRESHOLD;
    cfg.oplog = Some(OpLogConfig::new(root.join("oplog")));
    let daemon = match Daemon::start(cfg, reopt) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("skipping efficacy e2e test: cannot bind a socket here ({e})");
            return;
        }
    };

    let mut client = Client::connect(daemon.addr()).expect("connect");
    let mut upload = |label: &str, text: &str| {
        client
            .upload_reader("BFS", label, text.len() as u64, &mut text.as_bytes())
            .expect("upload")
    };

    // Epoch 1: good-generation evidence. The commit refreshes hints
    // against the shard, and the rigged reoptimizer swaps the detuned
    // generation 2 in — the regression begins.
    let r1 = upload("epoch-1", &good_dump);
    assert_eq!(r1.generation, Some(2), "bad deploy must swap in: {r1:?}");

    // Epoch 2: first detuned evidence — below the window, no verdict.
    let r2 = upload("epoch-2", &detuned_dump);
    assert_eq!(
        r2.generation,
        Some(2),
        "one epoch of evidence must not trigger the policy: {r2:?}"
    );

    // Epoch 3: the window fills, the regression is proven, and the
    // daemon rolls itself back to generation 1.
    let r3 = upload("epoch-3", &detuned_dump);
    assert_eq!(r3.generation, Some(1), "auto-rollback must fire: {r3:?}");

    let status = client.status("BFS").expect("status");
    assert!(status.contains("efficacy gen 1"), "{status}");
    assert!(status.contains("(rolled back)"), "{status}");
    daemon.shutdown();

    // The active hints are byte-identical to the prior (good)
    // generation; the detuned bytes survive only as the audit copy.
    let current = std::fs::read(root.join("hints/BFS/current.hints")).unwrap();
    assert_eq!(current, good_hints, "rollback must restore the good bytes");
    assert_eq!(
        std::fs::read(root.join("hints/BFS/gen-000001.hints")).unwrap(),
        good_hints
    );
    assert_eq!(
        std::fs::read(root.join("hints/BFS/gen-000002.hints")).unwrap(),
        detuned_hints
    );

    // The swap log audits the decision with the policy's reasoning.
    let log = swapper.read_log().expect("read swap log");
    let rollback_line = log
        .iter()
        .find(|l| l.starts_with("rollback"))
        .expect("rollback audited on swap.log");
    assert!(
        rollback_line.starts_with("rollback from=000002 to=000001 auto:"),
        "{rollback_line}"
    );

    // The ledger attributes the outcome shares per generation: the
    // good generation keeps its share, the detuned one is flagged.
    let store = ShardStore::open(root.join("db")).unwrap();
    let ledger = EfficacyLedger::load_or_empty(EfficacyLedger::path(store.dir(), "BFS"));
    let g1 = &ledger.generations[&1];
    let g2 = &ledger.generations[&2];
    assert_eq!(g1.epochs, 1);
    assert_eq!(g2.epochs, 2);
    assert!(!g1.rolled_back);
    assert!(g2.rolled_back);
    let l1 = g1.timely_share().expect("gen 1 has feedback");
    let l2 = g2.timely_share().expect("gen 2 has feedback");
    assert!(
        (l1 - good_share).abs() < 1e-9,
        "ledger share {l1} must equal the traced run's {good_share}"
    );
    assert!(l1 - l2 > THRESHOLD, "ledger must show the regression");

    // Metrics and op-log record the same decision.
    assert_eq!(
        registry.counter_value("apt_serve_auto_rollback_total", &[("tenant", "BFS")]),
        Some(1)
    );
    let records = apt_serve::read_oplog_dir(&root.join("oplog")).expect("op-log validates");
    assert!(
        records.iter().any(|r| matches!(&r.kind,
            OpKind::Rollback { tenant, from_gen: 2, to_gen: 1, note }
                if tenant == "BFS" && note.starts_with("auto:"))),
        "rollback missing from the op-log"
    );
    assert!(
        records.iter().any(|r| matches!(&r.kind,
            OpKind::Ledger { tenant, epochs: 3, .. } if tenant == "BFS")),
        "final ledger commit missing from the op-log"
    );

    // The generation tags round-trip the dump format: re-parsing the
    // uploaded text recovers the tag and the outcome counters the
    // ledger summed.
    let ing = parse_str(&good_dump, &IdentityRemap).expect("good dump re-parses");
    assert_eq!(ing.generation, Some(1));
    let agg = AggregateProfile::from_profile(&ing.profile, &ing.stats_or_default());
    assert_eq!(agg.instructions, g1.instructions);

    let _ = std::fs::remove_dir_all(&root);
}
