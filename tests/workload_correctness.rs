//! Cross-crate integration: every Table-3 workload, simulated end-to-end,
//! must match its native Rust reference implementation.

use apt_workloads::all_workloads;
use aptget::{execute, PipelineConfig};

/// Small scale keeps debug-mode runtimes reasonable while still executing
/// hundreds of thousands of instructions per app.
const TEST_SCALE: f64 = 0.01;

#[test]
fn every_workload_matches_its_reference() {
    let cfg = PipelineConfig::default();
    for spec in all_workloads() {
        let w = spec.build(TEST_SCALE, 7);
        let exec = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        (w.check)(&exec.image, &exec.rets).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn every_workload_matches_across_seeds() {
    let cfg = PipelineConfig::default();
    for seed in [1u64, 99, 4242] {
        for spec in all_workloads() {
            let w = spec.build(0.005, seed);
            let exec = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
            (w.check)(&exec.image, &exec.rets)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
        }
    }
}

#[test]
fn all_workload_modules_verify() {
    for spec in all_workloads() {
        let w = spec.build(0.004, 1);
        apt_lir::verify::verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn workloads_execute_nontrivial_instruction_counts() {
    let cfg = PipelineConfig::default();
    for spec in all_workloads() {
        let w = spec.build(TEST_SCALE, 7);
        let exec = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(
            exec.stats.instructions > 10_000,
            "{}: only {} instructions",
            spec.name,
            exec.stats.instructions
        );
        assert!(exec.stats.cycles >= exec.stats.instructions);
    }
}
