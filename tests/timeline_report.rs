//! Golden properties of the HTML timeline report (ISSUE 5 acceptance):
//! the rendered document is byte-identical across repeated runs and
//! `--jobs` values, references no external resources, and its
//! cross-variant phase diff identifies at least one phase with a nonzero
//! cycle delta on a workload where APT-GET beats the baseline.

use apt_bench::eval::{run_campaign, workload_phases, CampaignConfig, Variant};
use apt_bench::report::{render_campaign_report, timelines_json};

fn config(jobs: usize) -> CampaignConfig {
    CampaignConfig {
        workloads: vec!["RandAcc".into(), "IS".into()],
        cache: None,
        collect_outcomes: true,
        ..CampaignConfig::new(0.004, 42, jobs)
    }
}

fn render(jobs: usize) -> String {
    render_campaign_report(&run_campaign(&config(jobs)).expect("campaign runs"))
}

#[test]
fn report_is_byte_stable_across_runs_and_jobs() {
    let reference = render(1);
    assert_eq!(
        reference,
        render(1),
        "same config must re-render identically"
    );
    for jobs in [2, 4] {
        assert_eq!(
            reference,
            render(jobs),
            "report differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn report_references_no_external_resources() {
    let html = render(2);
    assert!(html.starts_with("<!DOCTYPE html>"));
    for needle in ["http", "<script", "<link", "url(", "@import", "src="] {
        assert!(!html.contains(needle), "report contains `{needle}`");
    }
    // Both workloads made it in, with charts and the phase tables.
    for workload in ["RandAcc", "IS"] {
        assert!(html.contains(workload), "missing section for {workload}");
    }
    assert!(html.contains("<svg"));
    assert!(html.contains("implied distance"));
}

#[test]
fn phase_diff_finds_cycles_saved_where_aptget_wins() {
    let report = run_campaign(&config(2)).unwrap();
    // At least one workload must show a real APT-GET speedup, and on that
    // workload the per-phase diff must localize a nonzero cycle delta.
    let mut saw_win = false;
    for chunk in report.cells.chunks_exact(Variant::ALL.len()) {
        if chunk[2].stats.cycles >= chunk[0].stats.cycles {
            continue;
        }
        saw_win = true;
        let phases = workload_phases(&chunk[0].timeline, &chunk[2].timeline);
        assert!(
            !phases.is_empty(),
            "{}: no phases detected",
            chunk[0].workload
        );
        let total_delta: i64 = phases
            .iter()
            .map(|p| p.aptget_cycles as i64 - p.baseline_cycles as i64)
            .sum();
        assert!(
            phases.iter().any(|p| p.aptget_cycles != p.baseline_cycles),
            "{}: every phase has a zero delta",
            chunk[0].workload
        );
        // The per-phase deltas must account for the whole-run win (the
        // projection conserves total cycles up to rounding per phase).
        assert!(
            total_delta < 0,
            "{}: phase deltas sum to {total_delta} despite a whole-run win",
            chunk[0].workload
        );
    }
    assert!(
        saw_win,
        "no workload showed an APT-GET speedup at this scale"
    );
}

#[test]
fn timelines_artifact_is_deterministic() {
    let a = timelines_json(&run_campaign(&config(1)).unwrap());
    let b = timelines_json(&run_campaign(&config(4)).unwrap());
    assert_eq!(a, b, "timeline artifact differs across --jobs");
    assert!(a.contains("\"variant\": \"APT-GET\""));
}
